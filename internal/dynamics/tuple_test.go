package dynamics

import (
	"errors"
	"testing"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func TestFictitiousPlayTupleBracketsValue(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"C5 k2", graph.Cycle(5), 2},
		{"C6 k2", graph.Cycle(6), 2},
		{"C6 k3", graph.Cycle(6), 3},
		{"star5 k2", graph.Star(5), 2},
		{"K4 k2", graph.Complete(4), 2},
		{"grid23 k2", graph.Grid(2, 3), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			value, _, _, err := core.GameValue(tt.g, tt.k)
			if err != nil {
				t.Fatalf("LP oracle: %v", err)
			}
			res, err := FictitiousPlayTuple(tt.g, tt.k, 3000)
			if err != nil {
				t.Fatalf("FictitiousPlayTuple: %v", err)
			}
			if !res.Brackets(value) {
				t.Fatalf("bounds [%v, %v] miss the value %v",
					res.LowerBound, res.UpperBound, value)
			}
			gap, _ := res.Gap().Float64()
			if gap > 0.25 {
				t.Errorf("gap %.4f too wide after %d rounds", gap, res.Rounds)
			}
		})
	}
}

func TestFictitiousPlayTupleMatchesEdgeModelAtK1(t *testing.T) {
	// At k=1 the tuple dynamics must agree with the Edge-model dynamics
	// (identical deterministic play).
	g := graph.Cycle(5)
	a, err := FictitiousPlay(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FictitiousPlayTuple(g, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.LowerBound.Cmp(b.LowerBound) != 0 || a.UpperBound.Cmp(b.UpperBound) != 0 {
		t.Errorf("k=1 mismatch: edge [%v,%v] vs tuple [%v,%v]",
			a.LowerBound, a.UpperBound, b.LowerBound, b.UpperBound)
	}
}

func TestFictitiousPlayTupleErrors(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := FictitiousPlayTuple(g, 1, 0); !errors.Is(err, ErrBadRounds) {
		t.Errorf("rounds=0: err = %v", err)
	}
	if _, err := FictitiousPlayTuple(g, 0, 10); !errors.Is(err, game.ErrBadK) {
		t.Errorf("k=0: err = %v", err)
	}
	if _, err := FictitiousPlayTuple(g, 9, 10); !errors.Is(err, game.ErrBadK) {
		t.Errorf("k>m: err = %v", err)
	}
	if _, err := FictitiousPlayTuple(graph.New(3), 1, 10); err == nil {
		t.Error("edgeless graph must fail")
	}
}

func TestIntCoverageMatchesRationalBranchBound(t *testing.T) {
	// The integer solver must agree with exhaustive counting on small
	// instances with integer loads.
	g := graph.Wheel(7)
	loads := []int{5, 1, 0, 3, 2, 0, 4}
	c := newIntCoverage(g, 2)
	set := c.maxCoverage(loads)
	if len(set) != 2 {
		t.Fatalf("tuple size = %d", len(set))
	}
	// Exhaustive check over all pairs.
	best := -1
	for i := 0; i < g.NumEdges(); i++ {
		for j := i + 1; j < g.NumEdges(); j++ {
			cov := make(map[int]bool)
			for _, id := range []int{i, j} {
				e := g.EdgeByID(id)
				cov[e.U] = true
				cov[e.V] = true
			}
			sum := 0
			for v := range cov {
				sum += loads[v]
			}
			if sum > best {
				best = sum
			}
		}
	}
	got := 0
	cov := make(map[int]bool)
	for _, id := range set {
		e := g.EdgeByID(id)
		cov[e.U] = true
		cov[e.V] = true
	}
	for v := range cov {
		got += loads[v]
	}
	if got != best {
		t.Errorf("intCoverage = %d, exhaustive best = %d", got, best)
	}
}
