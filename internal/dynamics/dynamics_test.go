package dynamics

import (
	"errors"
	"math/big"
	"testing"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

func gameValue(t *testing.T, g *graph.Graph) *big.Rat {
	t.Helper()
	value, _, _, err := core.GameValue(g, 1)
	if err != nil {
		t.Fatalf("LP oracle: %v", err)
	}
	return value
}

func TestFictitiousPlayBracketsValue(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"K2", graph.Path(2)},
		{"path5", graph.Path(5)},
		{"C5", graph.Cycle(5)},
		{"C6", graph.Cycle(6)},
		{"star5", graph.Star(5)},
		{"K4", graph.Complete(4)},
		{"petersen", graph.Petersen()},
		{"grid23", graph.Grid(2, 3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			value := gameValue(t, tt.g)
			res, err := FictitiousPlay(tt.g, 4000)
			if err != nil {
				t.Fatalf("FictitiousPlay: %v", err)
			}
			if !res.Brackets(value) {
				t.Fatalf("bounds [%v, %v] miss the value %v",
					res.LowerBound, res.UpperBound, value)
			}
			// The bracket must be reasonably tight after 4000 rounds.
			gap, _ := res.Gap().Float64()
			if gap > 0.15 {
				t.Errorf("gap %.4f too wide after %d rounds", gap, res.Rounds)
			}
		})
	}
}

func TestFictitiousPlayGapShrinks(t *testing.T) {
	g := graph.Cycle(5)
	short, err := FictitiousPlay(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	long, err := FictitiousPlay(g, 10000)
	if err != nil {
		t.Fatal(err)
	}
	gs, _ := short.Gap().Float64()
	gl, _ := long.Gap().Float64()
	if gl > gs {
		t.Errorf("gap grew with rounds: %.4f -> %.4f", gs, gl)
	}
}

func TestFictitiousPlayCountsConsistent(t *testing.T) {
	g := graph.Grid(2, 3)
	res, err := FictitiousPlay(g, 500)
	if err != nil {
		t.Fatal(err)
	}
	sumA, sumD := 0, 0
	for _, c := range res.AttackerCounts {
		sumA += c
	}
	for _, c := range res.DefenderCounts {
		sumD += c
	}
	if sumA != 500 || sumD != 500 {
		t.Errorf("counts sum to (%d, %d), want 500 each", sumA, sumD)
	}
}

func TestFictitiousPlayErrors(t *testing.T) {
	if _, err := FictitiousPlay(graph.Path(3), 0); !errors.Is(err, ErrBadRounds) {
		t.Errorf("rounds=0: err = %v", err)
	}
	if _, err := FictitiousPlay(graph.New(3), 10); err == nil {
		t.Error("edgeless graph must fail")
	}
	iso := graph.New(3)
	if err := iso.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := FictitiousPlay(iso, 10); !errors.Is(err, game.ErrIsolatedVertex) {
		t.Errorf("isolated: err = %v", err)
	}
}

func TestMultiplicativeWeightsConverges(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"C5", graph.Cycle(5)},
		{"C6", graph.Cycle(6)},
		{"star5", graph.Star(5)},
		{"K4", graph.Complete(4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			value, _ := gameValue(t, tt.g).Float64()
			res, err := MultiplicativeWeights(tt.g, 20000, 0)
			if err != nil {
				t.Fatalf("MW: %v", err)
			}
			if res.LowerBound > value+1e-9 || res.UpperBound < value-1e-9 {
				t.Fatalf("bounds [%.5f, %.5f] miss the value %.5f",
					res.LowerBound, res.UpperBound, value)
			}
			if res.UpperBound-res.LowerBound > 0.1 {
				t.Errorf("gap %.4f too wide", res.UpperBound-res.LowerBound)
			}
			if diff := res.Value - value; diff > 0.06 || diff < -0.06 {
				t.Errorf("value estimate %.5f vs exact %.5f", res.Value, value)
			}
		})
	}
}

func TestMultiplicativeWeightsAveragesAreDistributions(t *testing.T) {
	g := graph.Cycle(6)
	res, err := MultiplicativeWeights(g, 1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range res.AttackerAvg {
		if p < 0 {
			t.Fatal("negative attacker probability")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("attacker average sums to %.6f", sum)
	}
	sum = 0.0
	for _, p := range res.DefenderAvg {
		if p < 0 {
			t.Fatal("negative defender probability")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("defender average sums to %.6f", sum)
	}
}

func TestMultiplicativeWeightsErrors(t *testing.T) {
	if _, err := MultiplicativeWeights(graph.Path(3), 0, 0); !errors.Is(err, ErrBadRounds) {
		t.Errorf("rounds=0: err = %v", err)
	}
	if _, err := MultiplicativeWeights(graph.New(2), 10, 0); err == nil {
		t.Error("edgeless graph must fail")
	}
}

// TestDynamicsAgreeWithStructuralTheory: on a bipartite graph, both
// dynamics must home in on the matching-equilibrium value 1/|EC|.
func TestDynamicsAgreeWithStructuralTheory(t *testing.T) {
	g := graph.CompleteBipartite(2, 4)
	ne, err := core.SolveTupleModel(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ne.HitProbability() // 1/4

	fp, err := FictitiousPlay(g, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Brackets(want) {
		t.Errorf("FP bounds [%v, %v] miss %v", fp.LowerBound, fp.UpperBound, want)
	}
	mw, err := MultiplicativeWeights(g, 20000, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantF, _ := want.Float64()
	if mw.LowerBound > wantF+1e-9 || mw.UpperBound < wantF-1e-9 {
		t.Errorf("MW bounds [%.5f, %.5f] miss %.5f", mw.LowerBound, mw.UpperBound, wantF)
	}
}
