package dynamics

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// RegretMatching runs Hart & Mas-Colell's regret-matching dynamics on the
// Edge model Π_1(G) with one attacker: each round both players sample an
// action from probabilities proportional to positive cumulative regret
// (uniform when no regret is positive), then update regrets against the
// opponent's realized action. In zero-sum games the empirical play
// converges to the minimax value — a third learning algorithm, with
// randomized (rather than deterministic-FP or full-distribution-MW)
// updates. The seed builds a private source; callers composing several
// randomized algorithms into one reproducible run should use
// RegretMatchingRand with a shared *rand.Rand instead.
func RegretMatching(g *graph.Graph, rounds int, seed int64) (MWResult, error) {
	return RegretMatchingRand(g, rounds, rand.New(rand.NewSource(seed)))
}

// RegretMatchingRand is RegretMatching drawing from an injected source, so
// a whole experiment (graph generation included, via graph.Generator) can
// replay from a single seed. A nil rng falls back to a fixed seed of 1.
func RegretMatchingRand(g *graph.Graph, rounds int, rng *rand.Rand) (MWResult, error) {
	if rounds <= 0 {
		return MWResult{}, fmt.Errorf("%w: %d", ErrBadRounds, rounds)
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		return MWResult{}, errors.New("dynamics: graph has no edges")
	}
	if g.HasIsolatedVertex() {
		return MWResult{}, game.ErrIsolatedVertex
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	n, m := g.NumVertices(), g.NumEdges()

	atkRegret := make([]float64, n) // attacker action regrets
	defRegret := make([]float64, m) // defender action regrets
	atkCounts := make([]float64, n)
	defCounts := make([]float64, m)

	sample := func(regret []float64) int {
		total := 0.0
		for _, r := range regret {
			if r > 0 {
				total += r
			}
		}
		// total sums only positive regrets, so <= 0 means no positive
		// regret exists: play uniformly.
		if total <= 0 {
			return rng.Intn(len(regret))
		}
		x := rng.Float64() * total
		for i, r := range regret {
			if r > 0 {
				x -= r
				if x <= 0 {
					return i
				}
			}
		}
		return len(regret) - 1
	}

	for t := 0; t < rounds; t++ {
		av := sample(atkRegret)
		de := sample(defRegret)
		atkCounts[av]++
		defCounts[de]++

		edge := g.EdgeByID(de)
		// Attacker utility of playing v against edge de: 1 if it escapes.
		realized := 1.0
		if edge.Has(av) {
			realized = 0.0
		}
		for v := 0; v < n; v++ {
			alt := 1.0
			if edge.Has(v) {
				alt = 0.0
			}
			atkRegret[v] += alt - realized
		}
		// Defender utility of edge e against vertex av: 1 if it catches.
		realizedD := 1.0 - realized
		for e := 0; e < m; e++ {
			alt := 0.0
			if g.EdgeByID(e).Has(av) {
				alt = 1.0
			}
			defRegret[e] += alt - realizedD
		}
	}

	atkAvg := make([]float64, n)
	for v := range atkAvg {
		atkAvg[v] = atkCounts[v] / float64(rounds)
	}
	defAvg := make([]float64, m)
	for e := range defAvg {
		defAvg[e] = defCounts[e] / float64(rounds)
	}
	// Value bounds from the empirical averages, as in MW.
	hit := make([]float64, n)
	for e := 0; e < m; e++ {
		edge := g.EdgeByID(e)
		hit[edge.U] += defAvg[e]
		hit[edge.V] += defAvg[e]
	}
	lower := hit[0]
	for _, h := range hit[1:] {
		if h < lower {
			lower = h
		}
	}
	upper := 0.0
	for e := 0; e < m; e++ {
		edge := g.EdgeByID(e)
		if load := atkAvg[edge.U] + atkAvg[edge.V]; load > upper {
			upper = load
		}
	}
	obsRMRuns.Inc()
	obsRMRounds.Observe(float64(rounds))
	obsRMGap.Observe(upper - lower)
	return MWResult{
		Rounds:      rounds,
		Value:       (lower + upper) / 2,
		LowerBound:  lower,
		UpperBound:  upper,
		AttackerAvg: atkAvg,
		DefenderAvg: defAvg,
	}, nil
}
