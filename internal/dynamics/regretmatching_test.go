package dynamics

import (
	"errors"
	"math"
	"testing"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/graph"
)

func TestRegretMatchingConverges(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"C5", graph.Cycle(5)},
		{"C6", graph.Cycle(6)},
		{"star5", graph.Star(5)},
		{"K4", graph.Complete(4)},
		{"grid23", graph.Grid(2, 3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			value, _ := gameValue(t, tt.g).Float64()
			res, err := RegretMatching(tt.g, 60_000, 7)
			if err != nil {
				t.Fatalf("RegretMatching: %v", err)
			}
			// Randomized dynamics: the sampled empirical averages must
			// bracket the value within sampling slack and close in on it.
			const slack = 0.04
			if res.LowerBound > value+slack || res.UpperBound < value-slack {
				t.Fatalf("bounds [%.4f, %.4f] miss value %.4f",
					res.LowerBound, res.UpperBound, value)
			}
			if math.Abs(res.Value-value) > 0.08 {
				t.Errorf("estimate %.4f vs value %.4f", res.Value, value)
			}
		})
	}
}

func TestRegretMatchingDeterministicSeed(t *testing.T) {
	g := graph.Cycle(6)
	a, err := RegretMatching(g, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RegretMatching(g, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.LowerBound != b.LowerBound {
		t.Error("same seed must reproduce")
	}
}

func TestRegretMatchingAveragesAreDistributions(t *testing.T) {
	g := graph.Star(6)
	res, err := RegretMatching(g, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range res.AttackerAvg {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("attacker average sums to %v", sum)
	}
	sum = 0.0
	for _, p := range res.DefenderAvg {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("defender average sums to %v", sum)
	}
}

func TestRegretMatchingErrors(t *testing.T) {
	if _, err := RegretMatching(graph.Cycle(4), 0, 1); !errors.Is(err, ErrBadRounds) {
		t.Errorf("rounds=0: err = %v", err)
	}
	if _, err := RegretMatching(graph.New(2), 10, 1); err == nil {
		t.Error("edgeless must fail")
	}
}

// TestThreeLearnersAgree: FP, MW and RM all land on the same value — the
// LP oracle's — on a graph with no k-matching equilibrium.
func TestThreeLearnersAgree(t *testing.T) {
	g := graph.Petersen()
	value, _, _, err := core.GameValue(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	valueF, _ := value.Float64() // 1/5

	fp, err := FictitiousPlay(g, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Brackets(value) {
		t.Errorf("FP misses: [%v, %v]", fp.LowerBound, fp.UpperBound)
	}
	mw, err := MultiplicativeWeights(g, 15000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mw.Value-valueF) > 0.02 {
		t.Errorf("MW estimate %.4f", mw.Value)
	}
	rm, err := RegretMatching(g, 60_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rm.Value-valueF) > 0.08 {
		t.Errorf("RM estimate %.4f", rm.Value)
	}
}
