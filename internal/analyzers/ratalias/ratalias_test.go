package ratalias_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/ratalias"
)

func TestRatAlias(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/a", ratalias.Analyzer)
}
