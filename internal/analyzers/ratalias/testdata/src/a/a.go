// Package a is the ratalias fixture: mutating big.Rat methods on shared
// receivers are flagged; fresh locals and locally-made containers are not.
package a

import "math/big"

var shared = big.NewRat(1, 2)

// Strategy is exported: its fields are reachable by other packages.
type Strategy struct {
	P     *big.Rat
	Probs map[int]*big.Rat
}

type hidden struct {
	p     *big.Rat
	cells [][]*big.Rat
}

func flagged(s *Strategy, loads []*big.Rat, m map[string]*big.Rat) {
	shared.Add(shared, shared)     // want `package-level variable shared`
	loads[0].Mul(loads[0], shared) // want `map or slice element`
	m["k"].SetInt64(3)             // want `map or slice element`
	s.P.Neg(s.P)                   // want `field of exported type Strategy`
	s.Probs[1].Inv(shared)         // want `map or slice element`
	(shared).Quo(shared, shared)   // want `package-level variable shared`
}

func clean(h *hidden, s *Strategy) *big.Rat {
	sum := new(big.Rat)
	sum.Add(sum, shared) // fresh local accumulator: ok
	fresh := make([]*big.Rat, 2)
	fresh[0] = new(big.Rat)
	fresh[0].Add(fresh[0], shared) // element of container made here: ok
	byKey := map[int]*big.Rat{0: new(big.Rat)}
	byKey[0].SetInt64(7)      // composite literal made here: ok
	h.p.Set(shared)           // field of unexported type: ok
	h.cells[0][1].SetInt64(2) // element of unexported-type container: ok
	row := h.cells[0]
	row[0].Add(row[0], shared) // alias of owned container: ok
	_ = sum.Cmp(shared)        // Cmp does not mutate: ok
	v := s.P.Sign()            // Sign does not mutate: ok
	_ = v
	return new(big.Rat).Set(s.P) // defensive copy idiom: ok
}
