// Package ratalias flags in-place mutation of shared *big.Rat values.
//
// The equilibrium verifier (Theorems 3.1–3.4, Lemma 4.1) is exact only
// while every stored probability and load stays immutable after
// construction. big.Rat's arithmetic methods mutate their receiver, so a
// call like loads[v].Add(...) on a rat that aliases strategy-internal
// state silently corrupts later comparisons. The analyzer flags calls to
// mutating big.Rat methods whose receiver is
//
//   - a map or slice element of a container the function does not own,
//   - a struct field of an exported type, or
//   - a package-level variable.
//
// A receiver that is a plain local — conventionally a fresh new(big.Rat)
// accumulator — is allowed. A container counts as owned when it is rooted
// in a make() call, a composite literal, or a field of an *unexported*
// struct type (solver-internal scratch like the lp simplex tableau),
// including through local aliases of such containers.
package ratalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer flags mutating big.Rat method calls on shared receivers.
var Analyzer = &analysis.Analyzer{
	Name: "ratalias",
	Doc:  "flag in-place mutation of big.Rat values reachable by other code",
	Run:  run,
}

// mutators are the big.Rat methods that write through their receiver.
var mutators = map[string]bool{
	"Abs": true, "Add": true, "Inv": true, "Mul": true, "Neg": true,
	"Quo": true, "Scan": true, "Set": true, "SetFloat64": true,
	"SetFrac": true, "SetFrac64": true, "SetInt": true, "SetInt64": true,
	"SetString": true, "SetUint64": true, "Sub": true,
	"GobDecode": true, "UnmarshalText": true, "UnmarshalJSON": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		// Package-scope initializers have no surrounding function; treat
		// them with an empty fresh set.
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			checkFunc(pass, fn)
			return false
		})
	}
	return nil
}

// checkFunc inspects one function body with its set of owned containers
// (slices/maps the function created or that belong to unexported types,
// whose elements the function may mutate).
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	fresh := ownedContainers(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !mutators[sel.Sel.Name] {
			return true
		}
		if !isRatMethod(pass, sel) {
			return true
		}
		if msg := classifyReceiver(pass, sel.X, fresh); msg != "" {
			pass.Reportf(call.Pos(), "big.Rat.%s mutates %s; operate on a fresh new(big.Rat) instead", sel.Sel.Name, msg)
		}
		return true
	})
}

// isRatMethod reports whether sel selects a method of math/big.Rat.
func isRatMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	named, ok := deref(s.Recv()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "math/big" && obj.Name() == "Rat"
}

// classifyReceiver returns a description of the shared location the
// receiver denotes, or "" when the receiver is acceptably fresh.
func classifyReceiver(pass *analysis.Pass, recv ast.Expr, fresh map[types.Object]bool) string {
	switch e := unparen(recv).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			return "package-level variable " + e.Name
		}
	case *ast.IndexExpr:
		if ownedExpr(pass, e.X, fresh) {
			return "" // element of a container this function owns
		}
		return "a map or slice element"
	case *ast.SelectorExpr:
		s, ok := pass.TypesInfo.Selections[e]
		if !ok {
			// Qualified identifier: a package-level variable of another package.
			if v, isVar := pass.TypesInfo.Uses[e.Sel].(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "package-level variable " + e.Sel.Name
			}
			return ""
		}
		if s.Kind() != types.FieldVal {
			return ""
		}
		if named, ok := deref(s.Recv()).(*types.Named); ok && named.Obj().Exported() {
			return "a field of exported type " + named.Obj().Name()
		}
	}
	return ""
}

// ownedExpr reports whether e denotes storage the enclosing function may
// mutate: a fresh allocation, a field of an unexported struct type, an
// owned local, or an element of any of those.
func ownedExpr(pass *analysis.Pass, e ast.Expr, owned map[types.Object]bool) bool {
	switch cur := unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := unparen(cur.Fun).(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
			if obj := pass.TypesInfo.Uses[id]; obj == nil || obj.Pkg() == nil {
				return true // the builtin, not a shadowing function
			}
		}
		return false
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return cur.Op == token.AND && ownedExpr(pass, cur.X, owned)
	case *ast.StarExpr:
		return ownedExpr(pass, cur.X, owned)
	case *ast.IndexExpr:
		return ownedExpr(pass, cur.X, owned)
	case *ast.SelectorExpr:
		s, ok := pass.TypesInfo.Selections[cur]
		if !ok || s.Kind() != types.FieldVal {
			return false
		}
		named, ok := deref(s.Recv()).(*types.Named)
		return ok && !named.Obj().Exported()
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[cur]
		if obj == nil {
			obj = pass.TypesInfo.Defs[cur]
		}
		return obj != nil && owned[obj]
	}
	return false
}

// ownedContainers collects local variables holding storage the function
// owns: assigned from make()/composite literals, or aliases of containers
// that are themselves owned (e.g. row := t.cells[i] on an unexported
// struct). Aliases propagate via a bounded fixpoint so assignment order
// does not matter.
func ownedContainers(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	objOf := func(lhs ast.Expr) types.Object {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[id]
	}
	for pass1 := 0; pass1 < 4; pass1++ {
		changed := false
		mark := func(lhs, rhs ast.Expr) {
			obj := objOf(lhs)
			if obj == nil || owned[obj] {
				return
			}
			if ownedExpr(pass, rhs, owned) {
				owned[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						mark(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						mark(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return owned
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
