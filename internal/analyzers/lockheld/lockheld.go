// Package lockheld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held.
//
// A channel send/receive, select, WaitGroup.Wait, time.Sleep, or blocking
// network/process I/O executed between Lock and Unlock extends the critical
// section by an unbounded wait — the classic recipe for a stalled worker
// pool (and, at service scale, a stalled defenderd broker: every request
// behind the held lock queues for the duration). The analyzer tracks each
// function body textually: a mutex counts as held from a Lock/RLock call on
// a receiver expression until the first matching Unlock/RUnlock (to the end
// of the function when the unlock is deferred), and any blocking operation
// positioned inside that span is reported.
//
// The model is per-function and position-based, not a full CFG: goroutine
// bodies (`go func(){...}`) and nested function literals are analyzed as
// their own scopes, since they do not block the lock holder at the point of
// definition. Genuine by-design waits under a lock can be annotated
// with a suppression naming this analyzer.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer flags blocking calls and channel operations under a held mutex.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "flag channel ops, WaitGroup.Wait, sleeps, and blocking I/O while a mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// span is one held-mutex region of a function body, in source positions.
type span struct {
	key  string // printable receiver expression, e.g. "r.mu"
	from token.Pos
	to   token.Pos
	line int // line of the Lock call, for the message
}

// checkBody analyzes one function body in isolation: nested function
// literals are skipped here (run visits them as separate scopes).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	spans := lockSpans(pass, body)
	if len(spans) == 0 {
		return
	}
	comms := selectCommRanges(body)
	inspectScope(body, func(n ast.Node) {
		pos, what := blockingOp(pass, n)
		if what == "" {
			return
		}
		if _, isSelect := n.(*ast.SelectStmt); !isSelect && inRanges(pos, comms) {
			return // a comm clause blocks as part of its select, reported once there
		}
		for _, s := range spans {
			if pos > s.from && pos < s.to {
				pass.Reportf(pos, "%s while %s is held (Lock at line %d); shrink the critical section", what, s.key, s.line)
				return
			}
		}
	})
}

// posRange is a half-open source region [from, to).
type posRange struct{ from, to token.Pos }

// selectCommRanges returns the regions of the comm statements (the
// `case v := <-ch:` parts) of every select in scope.
func selectCommRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	inspectScope(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				out = append(out, posRange{cc.Comm.Pos(), cc.Comm.End()})
			}
		}
	})
	return out
}

func inRanges(pos token.Pos, ranges []posRange) bool {
	for _, r := range ranges {
		if pos >= r.from && pos < r.to {
			return true
		}
	}
	return false
}

// lockSpans collects the held regions of body. Every Lock/RLock opens a span
// that the first later Unlock/RUnlock on the same receiver closes; a
// deferred unlock (the dominant idiom) holds to the end of the body.
func lockSpans(pass *analysis.Pass, body *ast.BlockStmt) []span {
	type event struct {
		pos      token.Pos
		key      string
		unlock   bool
		deferred bool
	}
	var events []event
	inspectScope(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		key, name, ok := mutexMethod(pass, call)
		if !ok {
			return
		}
		events = append(events, event{pos: call.Pos(), key: key, unlock: strings.Contains(name, "Unlock")})
	})
	// Deferred unlocks: mark them so they close at body end, not at the
	// defer statement's position.
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			for i := range events {
				if events[i].pos == d.Call.Pos() {
					events[i].deferred = true
				}
			}
		}
		return true
	})

	var spans []span
	for i, ev := range events {
		if ev.unlock {
			continue
		}
		to := body.End()
		for j := i + 1; j < len(events); j++ {
			next := events[j]
			if next.key == ev.key && next.unlock && !next.deferred {
				to = next.pos
				break
			}
		}
		spans = append(spans, span{
			key:  ev.key,
			from: ev.pos,
			to:   to,
			line: pass.Fset.Position(ev.pos).Line,
		})
	}
	return spans
}

// mutexMethod reports whether call is (R)Lock/(R)Unlock on a sync.Mutex or
// sync.RWMutex receiver, returning the printable receiver expression.
func mutexMethod(pass *analysis.Pass, call *ast.CallExpr) (key, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name = sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, isMethod := pass.TypesInfo.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return "", "", false
	}
	named, isNamed := deref(s.Recv()).(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

// blockingOp classifies n as an operation that can block indefinitely,
// returning its position and a description ("" when not blocking).
func blockingOp(pass *analysis.Pass, n ast.Node) (token.Pos, string) {
	switch op := n.(type) {
	case *ast.SendStmt:
		return op.Arrow, "channel send"
	case *ast.UnaryExpr:
		if op.Op == token.ARROW {
			return op.OpPos, "channel receive"
		}
	case *ast.SelectStmt:
		return op.Select, "select"
	case *ast.CallExpr:
		if desc := blockingCall(pass, op); desc != "" {
			return op.Pos(), desc
		}
	}
	return token.NoPos, ""
}

// blockingCall recognizes calls that block: WaitGroup.Wait, time.Sleep, and
// anything from the net, net/*, and os/exec packages.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		named, isNamed := deref(s.Recv()).(*types.Named)
		if isNamed {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" && sel.Sel.Name == "Wait" {
				return "WaitGroup.Wait"
			}
		}
		if fn, isFn := s.Obj().(*types.Func); isFn && fn.Pkg() != nil && blockingPkg(fn.Pkg().Path()) {
			return fn.Pkg().Path() + " I/O call " + fn.Name()
		}
		return ""
	}
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if path == "time" && fn.Name() == "Sleep" {
			return "time.Sleep"
		}
		if blockingPkg(path) {
			return path + " I/O call " + fn.Name()
		}
	}
	return ""
}

// blockingPkg reports whether path names a package whose calls are assumed
// to block on the network or on child processes.
func blockingPkg(path string) bool {
	return path == "net" || strings.HasPrefix(path, "net/") || path == "os/exec"
}

// inspectScope walks n but does not descend into nested function literals —
// their bodies run on their own goroutine or call stack, not under the
// current function's locks at definition time.
func inspectScope(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
