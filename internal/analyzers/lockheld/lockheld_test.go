package lockheld_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/lockheld"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/a", lockheld.Analyzer)
}
