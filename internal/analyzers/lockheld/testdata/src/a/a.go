// Package a is the lockheld fixture: no unbounded waits between Lock and
// Unlock.
package a

import (
	"sync"
	"time"
)

type srv struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func (s *srv) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while s.mu is held`
	s.mu.Unlock()
}

func (s *srv) badDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `channel receive while s.mu is held`
}

func (s *srv) badWait() {
	s.mu.Lock()
	s.wg.Wait() // want `WaitGroup.Wait while s.mu is held`
	s.mu.Unlock()
}

func (s *srv) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
	s.mu.Unlock()
}

func (s *srv) badReadLock() {
	s.rw.RLock()
	<-s.ch // want `channel receive while s.rw is held`
	s.rw.RUnlock()
}

func (s *srv) goodAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

func (s *srv) goodGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.ch <- 2 }() // runs after the holder returns; not under the lock
}

func (s *srv) suppressedSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// lint:invariant(lockheld): non-blocking drain; the default case bounds the wait
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}
