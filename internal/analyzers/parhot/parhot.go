// Package parhot flags obs.Default() registry lookups inside par.For
// worker closures.
//
// A par.For body is the hot loop of the multicore solver stack: it runs
// once per worker per parallel region, often millions of times per solve.
// obs.Default().Counter("...") in that position is not a metric bump but
// a registration — a registry lock plus a name lookup — repeated on every
// worker invocation, serializing the very loop the fan-out was supposed
// to speed up. Metric handles are package-level singletons everywhere in
// this repo (see OBSERVABILITY.md); the worker closure should close over
// the hoisted handle and only Inc/Add/Set it.
//
// The check is syntactic over typed ASTs: any call of the obs package's
// Default inside a function literal passed directly to par.For is
// reported, test files excluded. Handles hoisted to package scope or to
// locals outside the closure pass.
package parhot

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer flags registry lookups inside par.For worker closures.
var Analyzer = &analysis.Analyzer{
	Name: "parhot",
	Doc:  "flag obs.Default() calls inside par.For worker closures; hoist the metric handle out of the parallel region",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParFor(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if inner, ok := m.(*ast.CallExpr); ok && isDefaultCall(pass, inner) {
						pass.Reportf(inner.Pos(), "obs.Default() inside a par.For worker closure pays a registry lookup per worker invocation; hoist the metric handle out of the parallel region")
					}
					return true
				})
			}
			return true
		})
	}
	return nil
}

// isParFor reports whether call invokes the par package's For.
func isParFor(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "For" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && isParPkg(fn.Pkg().Path())
}

// isDefaultCall reports whether e is a call of the obs package's Default.
func isDefaultCall(pass *analysis.Pass, e *ast.CallExpr) bool {
	sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Default" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && isObsPkg(fn.Pkg().Path())
}

func isParPkg(path string) bool {
	return path == "internal/par" || strings.HasSuffix(path, "/internal/par")
}

func isObsPkg(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}
