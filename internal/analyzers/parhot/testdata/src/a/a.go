// Package a is the parhot fixture: metric handles are hoisted out of
// par.For worker closures.
package a

import (
	"internal/obs"
	"internal/par"
)

var hits = obs.Default().Counter("a.hits")

func goodHoistedPackageLevel(n int) {
	par.For(2, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			hits.Inc()
		}
	})
}

func goodHoistedLocal(n int) {
	c := obs.Default().Counter("a.local")
	par.For(2, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			c.Inc()
		}
	})
}

func badRegistrationInBody(n int) {
	par.For(2, n, func(w, lo, hi int) {
		c := obs.Default().Counter("a.slow") // want `obs\.Default\(\) inside a par\.For worker closure`
		for i := lo; i < hi; i++ {
			c.Inc()
		}
	})
}

func badGaugeDeepInLoop(n int) {
	par.For(par.Split(4, n, 1), n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			obs.Default().Gauge("a.depth").Set(float64(i)) // want `obs\.Default\(\) inside a par\.For worker closure`
		}
	})
}

func goodOutsideClosure(n int) {
	g := obs.Default().Gauge("a.before")
	par.For(2, n, func(w, lo, hi int) {
		_ = lo
	})
	g.Set(float64(n))
}
