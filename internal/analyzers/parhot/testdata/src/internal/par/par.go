// Package par is a stand-in for the real parallel-for substrate, shaped
// just enough for the parhot fixtures to type-check.
package par

// For runs fn over [0, n) split into worker chunks.
func For(workers, n int, fn func(w, lo, hi int)) { fn(0, 0, n) }

// Split shrinks a worker count to keep chunks at minGrain elements.
func Split(workers, n, minGrain int) int { return 1 }
