// Package obs is a stand-in for the real observability registry, shaped
// just enough for the parhot fixtures to type-check.
package obs

// Registry registers metrics by name.
type Registry struct{}

var def Registry

// Default returns the process-wide registry.
func Default() *Registry { return &def }

// Counter registers a counter.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Counter is a stand-in metric handle.
type Counter struct{}

// Inc bumps the counter.
func (c *Counter) Inc() {}

// Gauge is a stand-in metric handle.
type Gauge struct{}

// Set stores a value.
func (g *Gauge) Set(v float64) {}
