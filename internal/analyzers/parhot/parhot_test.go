package parhot_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/parhot"
)

func TestParHot(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/a", parhot.Analyzer)
}
