// Package errlost flags discarded error results from this module's
// internal/... functions.
//
// PR 5's exact-arithmetic kernel turned silent numeric failure into explicit
// error returns (checked multiplies, budget exhaustion); an NE verdict built
// on a dropped error is exactly the all-or-nothing failure the Defender
// theorems cannot tolerate. The analyzer flags every place an error produced
// by an internal package function vanishes:
//
//   - a call statement whose results (including an error) are ignored,
//   - `go f()` / `defer f()` where f returns an error nobody can see, and
//   - a blank assignment (`_ = f()`, `v, _ := g()`) of the error component.
//
// Blank discards that are genuinely safe (writes to strings.Builder, metrics
// snapshots on a best-effort debug endpoint) stay allowed only under an
// annotated suppression: // lint:invariant(errlost): <reason>.
package errlost

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer flags dropped errors from internal package functions.
var Analyzer = &analysis.Analyzer{
	Name: "errlost",
	Doc:  "flag discarded error results of internal/... functions; handle the error or annotate a suppression",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDropped(pass, call, "call statement discards")
				}
			case *ast.GoStmt:
				checkDropped(pass, st.Call, "go statement discards")
			case *ast.DeferStmt:
				checkDropped(pass, st.Call, "defer statement discards")
			case *ast.AssignStmt:
				checkBlankAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// checkDropped reports call when it returns an error from an internal
// function and the whole result is thrown away.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, how string) {
	name, ok := internalErrCall(pass, call)
	if !ok {
		return
	}
	pass.Reportf(call.Pos(), "%s the error returned by %s; handle it (suppressible as lint:invariant(errlost))", how, name)
}

// checkBlankAssign reports blank identifiers that swallow the error
// component of an internal call's results.
func checkBlankAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	// v1, ..., vn := f() — one call fanning out to n targets.
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := internalErrCall(pass, call)
		if !ok {
			return
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(st.Lhs) {
			return
		}
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) && isBlank(st.Lhs[i]) {
				pass.Reportf(st.Lhs[i].Pos(), "blank identifier discards the error returned by %s; handle it (suppressible as lint:invariant(errlost))", name)
			}
		}
		return
	}
	// Pairwise assignments: _ = f().
	for i := range st.Lhs {
		if i >= len(st.Rhs) || !isBlank(st.Lhs[i]) {
			continue
		}
		call, ok := st.Rhs[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if name, ok := internalErrCall(pass, call); ok {
			pass.Reportf(st.Lhs[i].Pos(), "blank identifier discards the error returned by %s; handle it (suppressible as lint:invariant(errlost))", name)
		}
	}
}

// internalErrCall reports whether call invokes a function declared in an
// internal/... package of this module whose results include an error, and
// returns a printable callee name.
func internalErrCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	obj := callee(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !inInternal(fn.Pkg().Path()) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	hasErr := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			hasErr = true
		}
	}
	if !hasErr {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// callee resolves the called function or method object, when statically
// known.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// inInternal reports whether path names a package inside an internal/ tree
// (the real module prefixes it with the module path; fixtures use the bare
// form).
func inInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
