package errlost_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/errlost"
)

func TestErrLost(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/a", errlost.Analyzer)
}
