// Package a is the errlost fixture: errors from internal/... functions must
// be handled or discarded only under an annotated suppression.
package a

import "internal/solver"

func drops() {
	solver.Check()          // want `call statement discards the error returned by solver.Check`
	go solver.Check()       // want `go statement discards the error returned by solver.Check`
	defer solver.Check()    // want `defer statement discards the error returned by solver.Check`
	_ = solver.Check()      // want `blank identifier discards the error returned by solver.Check`
	v, _ := solver.Solve(3) // want `blank identifier discards the error returned by solver.Solve`
	_ = v
}

func handles() error {
	if err := solver.Check(); err != nil {
		return err
	}
	n, err := solver.Solve(2)
	_ = n
	return err
}

func noError() {
	solver.Pure(1) // no error result; nothing to lose
}

func suppressed() {
	// lint:invariant(errlost): best-effort debug write; failure is logged downstream
	_ = solver.Check()
}
