// Package solver is a stand-in internal/... dependency for the errlost
// fixture: its error-returning functions are the ones whose results must not
// be dropped.
package solver

import "errors"

// Solve returns n or an error for negative input.
func Solve(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}

// Check always succeeds.
func Check() error { return nil }

// Pure has no error result; discarding it is fine.
func Pure(n int) int { return n + 1 }
