// Package nakedpanic flags panic calls in internal/ library packages.
//
// Library code under internal/ is consumed by the public facade, the CLIs,
// and long-running experiment drivers; a panic there takes down the whole
// process instead of surfacing a diagnosable error. Functions should
// return errors. Panics that guard provably-unreachable invariants (the
// construction at the call site makes the condition impossible) may be
// kept by annotating the panic line — or the line above it — with a
// comment containing "lint:invariant" explaining why.
package nakedpanic

import (
	"go/ast"
	"strings"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer flags panics in internal library packages.
var Analyzer = &analysis.Analyzer{
	Name: "nakedpanic",
	Doc:  "flag panic in internal/ library packages; return an error or annotate // lint:invariant",
	Run:  run,
}

// marker is the allowlist comment for provably-unreachable panics.
const marker = "lint:invariant"

func run(pass *analysis.Pass) error {
	if !inInternal(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		allowed := markedLines(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Pkg() != nil {
				return true // shadowed: a user-defined panic function
			}
			line := pass.Fset.Position(call.Pos()).Line
			if allowed[line] || allowed[line-1] {
				return true
			}
			pass.Reportf(call.Pos(), "panic in internal library package; return an error (or annotate the invariant with // %s)", marker)
			return true
		})
	}
	return nil
}

// inInternal reports whether path names a package inside an internal/ tree.
func inInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// markedLines returns the set of lines covered by a comment group
// containing the allowlist marker. The whole group counts, so a multi-line
// justification ending just above the panic still exempts it.
func markedLines(pass *analysis.Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, group := range file.Comments {
		if !strings.Contains(group.Text(), marker) {
			continue
		}
		start := pass.Fset.Position(group.Pos()).Line
		end := pass.Fset.Position(group.End()).Line
		for l := start; l <= end; l++ {
			lines[l] = true
		}
	}
	return lines
}
