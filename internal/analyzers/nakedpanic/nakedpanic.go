// Package nakedpanic flags panic calls in internal/ library packages.
//
// Library code under internal/ is consumed by the public facade, the CLIs,
// and long-running experiment drivers; a panic there takes down the whole
// process instead of surfacing a diagnosable error. Functions should
// return errors. Panics that guard provably-unreachable invariants (the
// construction at the call site makes the condition impossible) may be kept
// by annotating the panic line — or the line above it — with a framework
// suppression naming this analyzer and the reason:
//
//	// lint:invariant(nakedpanic): <why the panic is unreachable>
//
// Suppression matching and auditing is done by the analysis framework, not
// here; this analyzer just reports every panic it sees.
package nakedpanic

import (
	"go/ast"
	"strings"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer flags panics in internal library packages.
var Analyzer = &analysis.Analyzer{
	Name: "nakedpanic",
	Doc:  "flag panic in internal/ library packages; return an error or annotate // lint:invariant(nakedpanic)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !inInternal(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Pkg() != nil {
				return true // shadowed: a user-defined panic function
			}
			pass.Reportf(call.Pos(), "panic in internal library package; return an error (or annotate the invariant as // lint:invariant(nakedpanic): <reason>)")
			return true
		})
	}
	return nil
}

// inInternal reports whether path names a package inside an internal/ tree.
func inInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}
