// Package b is the nakedpanic negative fixture, loaded under a
// non-internal import path: panics here are out of the analyzer's scope.
package b

func MustPositive(n int) int {
	if n <= 0 {
		panic("not positive") // public package: not flagged
	}
	return n
}
