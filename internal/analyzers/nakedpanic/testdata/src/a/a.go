// Package a is the nakedpanic fixture, loaded under an internal/ import
// path: naked panics flagged, lint:invariant-annotated panics allowed.
package a

import "errors"

func flagged(n int) int {
	if n < 0 {
		panic("negative") // want `panic in internal library package`
	}
	return n
}

func alsoFlagged() {
	defer func() { recover() }()
	panic(errors.New("boom")) // want `panic in internal library package`
}

func allowedSameLine(ok bool) {
	if !ok {
		panic("unreachable: caller validated ok") // lint:invariant(nakedpanic): callers construct ok=true by definition
	}
}

func allowedLineAbove(ids []int) int {
	if len(ids) == 0 {
		// lint:invariant(nakedpanic): ids non-empty by construction at every call site
		panic("empty ids")
	}
	return ids[0]
}

func cleanError(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}
