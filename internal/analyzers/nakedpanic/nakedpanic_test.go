package nakedpanic_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/nakedpanic"
)

func TestNakedPanicInternal(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/m/internal/a", nakedpanic.Analyzer)
}

func TestNakedPanicPublicPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/b", "example.com/m/b", nakedpanic.Analyzer)
}
