// Package globalrand flags use of the shared top-level math/rand source in
// non-test code.
//
// Every experiment in this repo must be reproducible from a single seed
// (EXPERIMENTS.md); randomness therefore flows through an injected
// *rand.Rand (see graph.Generator and dynamics.RegretMatchingRand). Calls
// like rand.Intn or rand.Float64 draw from the process-global source, whose
// state is shared across goroutines and cannot be replayed, so the analyzer
// flags any math/rand package-level call except the constructors (New,
// NewSource, NewZipf) that build injectable sources.
package globalrand

import (
	"go/ast"
	"go/types"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer flags top-level math/rand calls outside tests.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "flag top-level math/rand calls in non-test code; inject a *rand.Rand instead",
	Run:  run,
}

// constructors build explicit sources or generators and carry no global
// state; everything else at package level proxies the shared source.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 equivalents, should the repo migrate.
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || constructors[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if p := pkgName.Imported().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			pass.Reportf(call.Pos(), "rand.%s uses the global math/rand source; thread a seeded *rand.Rand through the caller", sel.Sel.Name)
			return true
		})
	}
	return nil
}
