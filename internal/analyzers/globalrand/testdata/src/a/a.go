// Package a is the globalrand fixture: global-source calls flagged,
// injected *rand.Rand and constructors not.
package a

import "math/rand"

func flagged() int {
	rand.Seed(42)                  // want `global math/rand source`
	x := rand.Intn(10)             // want `global math/rand source`
	y := rand.Float64()            // want `global math/rand source`
	rand.Shuffle(3, nil)           // want `global math/rand source`
	return x + int(y) + rand.Int() // want `global math/rand source`
}

func clean(rng *rand.Rand) int {
	local := rand.New(rand.NewSource(7)) // constructors: ok
	return local.Intn(10) + rng.Intn(10) // method calls on injected rand: ok
}
