package globalrand_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/a", globalrand.Analyzer)
}
