package metricname_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/a", metricname.Analyzer)
}

// TestCatalogueDrift covers the cross-file invariant on its own: code
// registering a metric the catalogue no longer lists.
func TestCatalogueDrift(t *testing.T) {
	analysistest.Run(t, "testdata/src/drift", "example.com/drift", metricname.Analyzer)
}
