// Package drift seeds catalogue drift: a metric registered in code but
// missing from OBSERVABILITY.md.
package drift

import "internal/obs"

func register() {
	obs.Default().Counter("drift.known.metric")
	obs.Default().Counter("drift.introduced.metric") // want `metric "drift.introduced.metric" is not in the OBSERVABILITY.md catalogue`
}
