// Package a is the metricname fixture: names on the default registry must
// be constant, dotted snake_case, registered once, and catalogued.
package a

import "internal/obs"

const spanName = "fixture.solve.duration"

func good() {
	obs.Default().Counter("fixture.requests.total")
	reg := obs.Default()
	reg.Counter("fixture.cache.lp.hits")
	reg.Counter("fixture.cache.lp.misses")
	obs.Default().StartSpan(spanName)
	obs.Default().StartSpanCtx(nil, "fixture.traced.solve")
}

func bad(kind string) {
	obs.Default().Counter("fixture." + kind)                // want `Counter name is not a compile-time constant`
	obs.Default().Gauge("Fixture.BadCase")                  // want `not dotted snake_case`
	obs.Default().Counter("fixture.requests.total")         // want `already registered at`
	obs.Default().Counter("fixture.unknown.metric")         // want `not in the OBSERVABILITY.md catalogue`
	obs.Default().Counter("fixture.rogue")                  // want `not in the OBSERVABILITY.md catalogue`
	obs.Default().StartSpanCtx(nil, "fixture."+kind)        // want `StartSpanCtx name is not a compile-time constant`
	obs.Default().StartSpanCtx(nil, "fixture.traced.solve") // want `already registered at`
}

func adHoc() {
	r := obs.NewRegistry()
	r.Counter("throwaway name, any shape") // ad-hoc registry: out of scope
}

func suppressed(kind string) {
	// lint:invariant(metricname): per-kind gauges form a catalogued family; kind is validated upstream
	obs.Default().Gauge("fixture.cells." + kind)
}
