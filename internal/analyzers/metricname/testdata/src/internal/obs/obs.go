// Package obs is a stand-in for the real observability registry, shaped
// just enough for the metricname fixtures to type-check: a Registry with
// the name-taking methods, a process-default instance, and an ad-hoc
// constructor that is out of the analyzer's scope.
package obs

// Registry registers metrics and spans by name.
type Registry struct{}

var def Registry

// Default returns the process-wide registry the catalogue governs.
func Default() *Registry { return &def }

// NewRegistry returns an ad-hoc registry (tests, fixtures); names on it are
// not catalogued.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a counter.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram registers a histogram.
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

// StartSpan opens a named span.
func (r *Registry) StartSpan(name string) *Span { return &Span{} }

// StartSpanCtx opens a named span under ctx's trace; the name is the
// second argument.
func (r *Registry) StartSpanCtx(ctx Context, name string) (*Span, Context) { return &Span{}, ctx }

// Context stands in for context.Context so the fixture stays
// self-contained.
type Context interface{}

// Counter is a stand-in metric handle.
type Counter struct{}

// Gauge is a stand-in metric handle.
type Gauge struct{}

// Histogram is a stand-in metric handle.
type Histogram struct{}

// Span is a stand-in span handle.
type Span struct{}
