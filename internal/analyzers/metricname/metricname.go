// Package metricname turns the OBSERVABILITY.md metric catalogue into a
// lint-enforced contract.
//
// Every metric or span registered on the default obs registry
// (obs.Default().Counter/Gauge/Histogram/StartSpan, directly or through a
// local handle of obs.Default()) must
//
//  1. pass its name as a compile-time constant — dynamic names defeat both
//     this analyzer and the catalogue, so they require an annotated
//     suppression,
//  2. be dotted snake_case ("experiments.cells.started"),
//  3. be registered at exactly one call site module-wide (the module Finish
//     hook sees every package), and
//  4. appear in the OBSERVABILITY.md catalogue, where entries may carry
//     placeholder segments in angle brackets and brace alternations
//     ("experiments.cache.<kind>.{hits,misses}"). Only catalogue rows —
//     lines starting with "|" (tables) or "-" (bullet lists) — count;
//     backticked names in running prose (conventions, cross-references)
//     never vouch for a registration, so a prose example like
//     "`<package>.<what>`" cannot silently whitelist every two-segment
//     name.
//
// Ad-hoc registries built with obs.NewRegistry (tests, fixtures) and the
// internal/obs implementation itself are out of scope; so are _test.go
// files, whose throwaway names never reach the catalogue.
package metricname

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer enforces the metric-name contract against OBSERVABILITY.md.
var Analyzer = &analysis.Analyzer{
	Name:           "metricname",
	Doc:            "obs metric/span names: compile-time constant, dotted snake_case, registered once, catalogued in OBSERVABILITY.md",
	Run:            run,
	NewModuleState: func() any { return &state{names: make(map[string][]site)} },
	Finish:         finish,
}

// CatalogueFile is the catalogue's file name, resolved against the module
// root (the fixture directory under analysistest).
const CatalogueFile = "OBSERVABILITY.md"

// site is one registration call site.
type site struct {
	kind string // "Counter", "Gauge", "Histogram", "StartSpan"
	pos  token.Position
}

// state is the analyzer's module-wide memory.
type state struct {
	names map[string][]site
}

// registryMethods maps each Registry method that takes a metric or span
// name to the index of its name argument (StartSpanCtx takes the context
// first).
var registryMethods = map[string]int{
	"Counter": 0, "Gauge": 0, "Histogram": 0, "StartSpan": 0, "StartSpanCtx": 1,
}

var nameRx = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

func run(pass *analysis.Pass) error {
	if isObsPkg(pass.PkgPath) {
		return nil // the registry implementation composes names freely
	}
	st := pass.State().(*state)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		handles := defaultHandles(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registryCall(pass, call, handles)
			if !ok || len(call.Args) <= registryMethods[kind] {
				return true
			}
			arg := call.Args[registryMethods[kind]]
			tv := pass.TypesInfo.Types[arg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "%s name is not a compile-time constant; the catalogue cannot vouch for dynamic names (suppressible as lint:invariant(metricname))", kind)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !nameRx.MatchString(name) {
				pass.Reportf(arg.Pos(), "%s name %q is not dotted snake_case (want e.g. %q)", kind, name, "experiments.cells.started")
				return true
			}
			st.names[name] = append(st.names[name], site{kind: kind, pos: pass.Fset.Position(arg.Pos())})
			return true
		})
	}
	return nil
}

// finish runs the cross-package rules: registered-once and catalogue
// membership.
func finish(mp *analysis.ModulePass) error {
	st := mp.State().(*state)
	if len(st.names) == 0 {
		return nil
	}
	catalogue, err := loadCatalogue(filepath.Join(mp.Module.Root, CatalogueFile))
	if err != nil {
		return err
	}
	names := make([]string, 0, len(st.names))
	for name := range st.names {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := st.names[name]
		sort.Slice(sites, func(i, j int) bool {
			a, b := sites[i].pos, sites[j].pos
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			return a.Line < b.Line
		})
		for _, s := range sites[1:] {
			mp.Reportf(s.pos, "metric %q is already registered at %s:%d; register each name exactly once", name, sites[0].pos.Filename, sites[0].pos.Line)
		}
		if !catalogue.contains(name) {
			mp.Reportf(sites[0].pos, "metric %q is not in the %s catalogue; document it there", name, CatalogueFile)
		}
	}
	return nil
}

// registryCall reports whether call is a name-taking Registry method on the
// default registry, and which method.
func registryCall(pass *analysis.Pass, call *ast.CallExpr, handles map[types.Object]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, named := registryMethods[sel.Sel.Name]; !named {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	named, ok := deref(s.Recv()).(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || !isObsPkg(obj.Pkg().Path()) {
		return "", false
	}
	if !isDefaultRegistry(pass, sel.X, handles) {
		return "", false
	}
	return sel.Sel.Name, true
}

// isDefaultRegistry reports whether recv denotes obs.Default(): the call
// itself, or a local handle assigned from it.
func isDefaultRegistry(pass *analysis.Pass, recv ast.Expr, handles map[types.Object]bool) bool {
	switch e := ast.Unparen(recv).(type) {
	case *ast.CallExpr:
		return isDefaultCall(pass, e)
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		return obj != nil && handles[obj]
	}
	return false
}

// isDefaultCall reports whether e is a call of the obs package's Default.
func isDefaultCall(pass *analysis.Pass, e *ast.CallExpr) bool {
	sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Default" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && isObsPkg(fn.Pkg().Path())
}

// defaultHandles collects the objects of local variables assigned directly
// from obs.Default() anywhere in file, so `reg := obs.Default();
// reg.Gauge(...)` is checked like the chained form.
func defaultHandles(pass *analysis.Pass, file *ast.File) map[types.Object]bool {
	handles := make(map[types.Object]bool)
	mark := func(lhs, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isDefaultCall(pass, call) {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			handles[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			handles[obj] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					mark(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					mark(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return handles
}

// isObsPkg matches the observability package in both the real module and
// fixtures.
func isObsPkg(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

// catalogue is the set of permissible metric names parsed from the markdown
// catalogue: exact names plus patterns from placeholder entries.
type catalogue struct {
	exact    map[string]bool
	patterns []*regexp.Regexp
}

func (c *catalogue) contains(name string) bool {
	if c.exact[name] {
		return true
	}
	for _, rx := range c.patterns {
		if rx.MatchString(name) {
			return true
		}
	}
	return false
}

// catalogueEntryRx matches a backtick span that looks like a metric name:
// lowercase dotted segments, optionally with <placeholder> segments or
// {a,b} alternations.
var catalogueEntryRx = regexp.MustCompile("`([a-z0-9_<>{},.]*\\.[a-z0-9_<>{},.]*)`")

// loadCatalogue extracts every metric-name-shaped backtick span from the
// catalogue document's rows. Only table rows ("| …") and bullet items
// ("- …") are catalogue entries; backticked names in running prose are
// commentary and must not vouch for a registration — a conventions
// example like `<package>.<what>` would otherwise compile into a
// catch-all pattern accepting every two-segment name.
func loadCatalogue(path string) (*catalogue, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("metricname: reading catalogue: %w", err)
	}
	c := &catalogue{exact: make(map[string]bool)}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "|") && !strings.HasPrefix(trimmed, "- ") {
			continue
		}
		for _, m := range catalogueEntryRx.FindAllStringSubmatch(line, -1) {
			entry := m[1]
			if strings.ContainsAny(entry, "<>{}") {
				if rx := entryPattern(entry); rx != nil {
					c.patterns = append(c.patterns, rx)
				}
				continue
			}
			if nameRx.MatchString(entry) {
				c.exact[entry] = true
			}
		}
	}
	return c, nil
}

// entryPattern compiles a placeholder entry into a full-match regexp:
// <placeholder> becomes one snake_case segment, {a,b} an alternation.
func entryPattern(entry string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString("^")
	for i := 0; i < len(entry); i++ {
		switch entry[i] {
		case '<':
			end := strings.IndexByte(entry[i:], '>')
			if end < 0 {
				return nil
			}
			b.WriteString(`[a-z0-9_]+`)
			i += end
		case '{':
			end := strings.IndexByte(entry[i:], '}')
			if end < 0 {
				return nil
			}
			alts := strings.Split(entry[i+1:i+end], ",")
			for j := range alts {
				alts[j] = regexp.QuoteMeta(strings.TrimSpace(alts[j]))
			}
			b.WriteString("(?:" + strings.Join(alts, "|") + ")")
			i += end
		case '.':
			b.WriteString(`\.`)
		default:
			b.WriteByte(entry[i])
		}
	}
	b.WriteString("$")
	rx, err := regexp.Compile(b.String())
	if err != nil {
		return nil
	}
	return rx
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
