// Package ratraw guards the exact-arithmetic kernel's construction and
// allocation invariants.
//
// The int64 fast path in internal/rat is sound only when every Rat enters
// the world through a constructor that establishes its invariants (canonical
// sign, reduced terms, promotion installed atomically). A raw composite
// literal sidesteps that: rat.Rat{} compiles anywhere (no keys required) and
// rat.Vec{...} builds element-wise, so both are flagged outside internal/rat
// itself, as is any direct write through a Rat or Vec element's fields.
//
// Separately, the solver hot paths (internal/lp, internal/game,
// internal/core) exist to avoid big.Rat churn; allocating big.Rat inside a
// loop body there reintroduces exactly the allocation profile PR 5 removed.
// The loop rule skips _test.go files — tests construct fixtures however they
// like — but the construction rule applies to tests too, since a
// non-canonical Rat corrupts whatever asserts on it.
package ratraw

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer enforces rat construction and hot-path allocation invariants.
var Analyzer = &analysis.Analyzer{
	Name: "ratraw",
	Doc:  "no raw rat.Rat/rat.Vec literals or field pokes outside internal/rat; no big.Rat allocation in solver loop bodies",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inRat := isRatPkg(pass.PkgPath)
	hot := isHotPath(pass.PkgPath)
	for _, file := range pass.Files {
		inTest := pass.InTestFile(file.Pos())
		// Nested loops both contain an inner allocation; report it once.
		reported := make(map[token.Pos]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch nd := n.(type) {
			case *ast.CompositeLit:
				if !inRat {
					checkLiteral(pass, nd)
				}
			case *ast.AssignStmt:
				if !inRat {
					checkFieldPoke(pass, nd)
				}
			case *ast.ForStmt:
				if hot && !inTest {
					checkLoopBody(pass, nd.Body, reported)
				}
			case *ast.RangeStmt:
				if hot && !inTest {
					checkLoopBody(pass, nd.Body, reported)
				}
			}
			return true
		})
	}
	return nil
}

// checkLiteral flags composite literals of the kernel's types.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	name := ratType(typeOf(pass, lit))
	if name == "" {
		return
	}
	pass.Reportf(lit.Pos(), "raw rat.%s composite literal bypasses the kernel's constructors; use rat.FromInt/rat.New/rat.NewVec (suppressible as lint:invariant(ratraw))", name)
}

// checkFieldPoke flags assignments through a field selector whose receiver is
// a kernel type — direct state mutation that skips canonicalization.
func checkFieldPoke(pass *analysis.Pass, st *ast.AssignStmt) {
	for _, lhs := range st.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			continue
		}
		if name := ratType(s.Recv()); name != "" {
			pass.Reportf(lhs.Pos(), "direct write to rat.%s field %s skips canonicalization; go through the rat API", name, sel.Sel.Name)
		}
	}
}

// checkLoopBody flags big.Rat allocations in a solver loop body. Nested
// function literals are skipped: a closure defined in the loop runs on its
// own schedule, and its own loops are inspected when the walk reaches them.
func checkLoopBody(pass *analysis.Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch nd := n.(type) {
		case *ast.CallExpr:
			if desc := bigRatAlloc(pass, nd); desc != "" && !reported[nd.Pos()] {
				reported[nd.Pos()] = true
				pass.Reportf(nd.Pos(), "%s inside a hot-path loop body; hoist it or use the rat kernel (suppressible as lint:invariant(ratraw))", desc)
			}
		case *ast.CompositeLit:
			if isBigRat(typeOf(pass, nd)) && !reported[nd.Pos()] {
				reported[nd.Pos()] = true
				pass.Reportf(nd.Pos(), "big.Rat literal inside a hot-path loop body; hoist it or use the rat kernel (suppressible as lint:invariant(ratraw))")
			}
		}
		return true
	})
}

// bigRatAlloc classifies call as a big.Rat allocation: big.NewRat(...) or
// new(big.Rat).
func bigRatAlloc(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "math/big" && fn.Name() == "NewRat" {
			return "big.NewRat allocation"
		}
	case *ast.Ident:
		if fun.Name == "new" && len(call.Args) == 1 {
			if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "new" {
				if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.IsType() && isBigRat(tv.Type) {
					return "new(big.Rat) allocation"
				}
			}
		}
	}
	return ""
}

// ratType returns "Rat" or "Vec" when t is the kernel's type (possibly
// through a pointer), else "".
func ratType(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !isRatPkg(obj.Pkg().Path()) {
		return ""
	}
	if obj.Name() == "Rat" || obj.Name() == "Vec" {
		return obj.Name()
	}
	return ""
}

// isBigRat reports whether t is math/big.Rat (possibly through a pointer).
func isBigRat(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "math/big" && obj.Name() == "Rat"
}

// isRatPkg matches the kernel package in both the real module and fixtures.
func isRatPkg(path string) bool {
	return path == "internal/rat" || strings.HasSuffix(path, "/internal/rat")
}

// isHotPath matches the solver packages whose loops are allocation-sensitive.
func isHotPath(path string) bool {
	for _, p := range []string{"internal/lp", "internal/game", "internal/core"} {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}
