package ratraw_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/ratraw"
)

func TestRatRaw(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/m/internal/lp", ratraw.Analyzer)
}
