// Package lp is the ratraw fixture. It is loaded under an internal/lp
// import path, so both rules apply: no raw kernel construction (any package
// outside internal/rat) and no big.Rat allocation in loop bodies (hot-path
// packages).
package lp

import (
	"internal/rat"
	"math/big"
)

func badConstruct() {
	r := rat.Rat{}               // want `raw rat.Rat composite literal bypasses the kernel's constructors`
	v := rat.Vec{rat.FromInt(1)} // want `raw rat.Vec composite literal bypasses the kernel's constructors`
	r.Num = 3                    // want `direct write to rat.Rat field Num skips canonicalization`
	_ = r
	_ = v
}

func goodConstruct() rat.Vec {
	v := rat.NewVec(2)
	v[0] = rat.FromInt(7) // element replacement through the API's values
	return v
}

func badLoop(n int) *big.Rat {
	acc := big.NewRat(0, 1) // outside any loop: allowed
	for i := 1; i <= n; i++ {
		t := big.NewRat(int64(i), 1) // want `big.NewRat allocation inside a hot-path loop body`
		acc.Add(acc, t)
		p := new(big.Rat) // want `new\(big.Rat\) allocation inside a hot-path loop body`
		_ = p
	}
	return acc
}

func suppressedLoop(xs []int64) *big.Rat {
	acc := new(big.Rat)
	for _, x := range xs {
		// lint:invariant(ratraw): conversion boundary; inputs arrive as big.Rat only here
		acc.Add(acc, big.NewRat(x, 1))
	}
	return acc
}
