// Package rat is a stand-in for the exact-arithmetic kernel. Unlike the
// real kernel it exports its fields, so the fixture can exercise the
// field-poke diagnostic (which types would otherwise reject at compile
// time).
package rat

// Rat is a stand-in rational; the literal in FromInt is fine because raw
// construction is the kernel's own privilege.
type Rat struct{ Num, Den int64 }

// Vec is a stand-in vector of rationals.
type Vec []Rat

// FromInt returns n as a Rat.
func FromInt(n int64) Rat { return Rat{Num: n, Den: 1} }

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }
