// Package analyzers registers the project's invariant checkers: the suite
// run by cmd/defenderlint and the CI lint gate. See the individual analyzer
// packages for the invariant each one encodes.
package analyzers

import (
	"github.com/defender-game/defender/internal/analyzers/analysis"
	"github.com/defender-game/defender/internal/analyzers/floateq"
	"github.com/defender-game/defender/internal/analyzers/globalrand"
	"github.com/defender-game/defender/internal/analyzers/nakedpanic"
	"github.com/defender-game/defender/internal/analyzers/ratalias"
)

// All returns every registered analyzer, in deterministic order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		floateq.Analyzer,
		globalrand.Analyzer,
		nakedpanic.Analyzer,
		ratalias.Analyzer,
	}
}
