// Package analyzers registers the project's invariant checkers: the suite
// run by cmd/defenderlint and the CI lint gate. See the individual analyzer
// packages for the invariant each one encodes.
package analyzers

import (
	"github.com/defender-game/defender/internal/analyzers/analysis"
	"github.com/defender-game/defender/internal/analyzers/errlost"
	"github.com/defender-game/defender/internal/analyzers/floateq"
	"github.com/defender-game/defender/internal/analyzers/globalrand"
	"github.com/defender-game/defender/internal/analyzers/lockheld"
	"github.com/defender-game/defender/internal/analyzers/metricname"
	"github.com/defender-game/defender/internal/analyzers/mutexcopy"
	"github.com/defender-game/defender/internal/analyzers/nakedpanic"
	"github.com/defender-game/defender/internal/analyzers/parhot"
	"github.com/defender-game/defender/internal/analyzers/ratalias"
	"github.com/defender-game/defender/internal/analyzers/ratraw"
)

// All returns the ten registered analyzers, in deterministic order. The
// suppression auditor is not listed here: it is part of the framework
// (analysis.AuditorName) and runs on every invocation.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errlost.Analyzer,
		floateq.Analyzer,
		globalrand.Analyzer,
		lockheld.Analyzer,
		metricname.Analyzer,
		mutexcopy.Analyzer,
		nakedpanic.Analyzer,
		parhot.Analyzer,
		ratalias.Analyzer,
		ratraw.Analyzer,
	}
}
