package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// This file renders diagnostics machine-readably: a flat JSON array for
// scripting (jq), and SARIF 2.1.0 for code-scanning UIs and the CI artifact
// (.github/workflows upload _smoke/defenderlint.sarif on every push).

// jsonDiagnostic is the -format=json shape of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON renders diags as an indented JSON array (empty array when clean),
// with file paths relative to root when possible.
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Minimal SARIF 2.1.0 model — only the properties the spec requires plus the
// ones code-scanning consumers actually read.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as a SARIF 2.1.0 log with one rule per analyzer
// (the suppression auditor included) and file URIs relative to root.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: firstLine(a.Doc)}})
	}
	rules = append(rules, sarifRule{ID: AuditorName, ShortDescription: sarifMessage{Text: AuditorDoc}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(relPath(root, d.Pos.Filename))},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "defenderlint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// relPath rewrites path relative to root when it lies inside it, preferring
// stable repo-relative URIs over machine-specific absolute paths.
func relPath(root, path string) string {
	if root == "" {
		return path
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

// firstLine truncates a doc string to its summary line.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
