package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// The shared suppression grammar. A comment line whose text (after the
// comment markers) begins with the marker suppresses findings of exactly one
// analyzer, and must carry a reason:
//
//	// lint:invariant(<analyzer>): <reason>
//
// The suppression masks diagnostics of that analyzer on any line of its
// comment group plus the line immediately after the group, so both the
// same-line trailing form and a (possibly multi-line) justification ending
// just above the flagged statement work. Suppressions are audited: malformed
// comments, unknown analyzer names, and stale suppressions (masking nothing)
// are reported under the pseudo-analyzer name "suppression".
const marker = "lint:invariant"

// SuppressionDoc is the one-line grammar reminder quoted in diagnostics.
const SuppressionDoc = "// lint:invariant(<analyzer>): <reason>"

// AuditorName is the analyzer name the suppression auditor reports under;
// drivers treat it like a tenth analyzer for -only/-skip and summaries.
const AuditorName = "suppression"

// AuditorDoc describes the auditor in driver listings.
const AuditorDoc = "audit lint:invariant suppressions: malformed, unknown analyzer, or stale (masking no finding)"

var suppRx = regexp.MustCompile(`^lint:invariant\(([A-Za-z0-9_]+)\)\s*:\s*(.+)$`)

// suppression is one parsed lint:invariant comment.
type suppression struct {
	pos       token.Position // where the marker line starts
	analyzer  string         // "" when malformed
	reason    string
	malformed bool
	startLine int // first masked line
	endLine   int // last masked line (comment group end + 1)
	used      bool
}

// collectSuppressions scans every comment of every file once. Files shared
// between package variants (a package and its test-augmented sibling) are
// deduplicated by filename.
func collectSuppressions(fset *token.FileSet, pkgs []*Package) []*suppression {
	var out []*suppression
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			name := fset.Position(file.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			out = append(out, fileSuppressions(fset, file)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// fileSuppressions parses the suppressions of one file. Only lines that
// *begin* with the marker count; prose that merely mentions it (analyzer
// docs, error messages) is ignored.
func fileSuppressions(fset *token.FileSet, file *ast.File) []*suppression {
	var out []*suppression
	for _, group := range file.Comments {
		groupStart := fset.Position(group.Pos()).Line
		groupEnd := fset.Position(group.End()).Line
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "/*") {
				text = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
			}
			if !strings.HasPrefix(text, marker) {
				continue
			}
			s := &suppression{
				pos:       fset.Position(c.Pos()),
				startLine: groupStart,
				endLine:   groupEnd + 1,
			}
			if m := suppRx.FindStringSubmatch(text); m != nil {
				s.analyzer, s.reason = m[1], strings.TrimSpace(m[2])
			} else {
				s.malformed = true
			}
			out = append(out, s)
		}
	}
	return out
}

// applySuppressions removes diagnostics masked by a well-formed suppression
// naming their analyzer, marking each suppression that fired as used.
func applySuppressions(diags []Diagnostic, supps []*suppression) []Diagnostic {
	if len(supps) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		masked := false
		for _, s := range supps {
			if s.malformed || s.analyzer != d.Analyzer {
				continue
			}
			if s.pos.Filename == d.Pos.Filename && d.Pos.Line >= s.startLine && d.Pos.Line <= s.endLine {
				s.used = true
				masked = true
			}
		}
		if !masked {
			kept = append(kept, d)
		}
	}
	return kept
}

// auditSuppressions turns suppression defects into diagnostics. Staleness is
// only judged for analyzers that actually ran: a suppression for an analyzer
// outside the suite is unverifiable, not stale.
func auditSuppressions(supps []*suppression, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	report := func(s *suppression, format string, args ...interface{}) {
		out = append(out, Diagnostic{
			Analyzer: AuditorName,
			Pos:      s.pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, s := range supps {
		switch {
		case s.malformed:
			report(s, "malformed suppression; the grammar is %s", SuppressionDoc)
		case !ran[s.analyzer]:
			report(s, "suppression names unknown analyzer %q", s.analyzer)
		case !s.used:
			report(s, "stale suppression: no %s finding on lines %d-%d; delete it or fix the reason", s.analyzer, s.startLine, s.endLine)
		}
	}
	return out
}
