// Package analysis is a self-contained, dependency-free re-implementation of
// the core of golang.org/x/tools/go/analysis: just enough of the Analyzer /
// Pass / Diagnostic contract to host the project's invariant checkers. The
// build environment deliberately carries no third-party modules, so the repo
// vendors the *idea* of the framework (same shape, same fixture conventions)
// on top of the standard library's go/ast, go/parser and go/types only.
//
// An Analyzer inspects one type-checked package at a time and reports
// diagnostics through its Pass. Drivers (cmd/defenderlint, the analysistest
// fixture runner) load packages with Loader and invoke Run.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer minus the dependency and fact
// machinery, which the project's checkers do not need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is a one-paragraph description; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string // import path as the driver sees it (may differ from Pkg.Path in fixtures)
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos falls in a _test.go file. Loader only loads
// non-test sources, but fixture packages may include test-named files to
// exercise the exemption.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run applies each analyzer to the package and returns all diagnostics
// sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
