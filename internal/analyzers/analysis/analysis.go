// Package analysis is a self-contained, dependency-free re-implementation of
// the core of golang.org/x/tools/go/analysis: just enough of the Analyzer /
// Pass / Diagnostic contract to host the project's invariant checkers. The
// build environment deliberately carries no third-party modules, so the repo
// vendors the *idea* of the framework (same shape, same fixture conventions)
// on top of the standard library's go/ast, go/parser and go/types only.
//
// Since PR 6 the framework is a whole-module engine: a Module run loads every
// package through one Loader (one shared type-check per dependency), gives
// each analyzer an optional module-wide state plus a Finish hook that runs
// after the last package (cross-package invariants like metricname's
// registered-once rule), applies the shared suppression grammar
//
//	// lint:invariant(<analyzer>): <reason>
//
// uniformly to every analyzer's diagnostics, and audits the suppressions
// themselves: a comment that fails to parse, names an unknown analyzer, or no
// longer masks any finding is itself a diagnostic (analyzer "suppression").
// Diagnostics are ordered deterministically across packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer minus the dependency and fact
// machinery, which the project's checkers do not need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, suppressions, and
	// -only/-skip filters.
	Name string
	// Doc is a one-paragraph description; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// NewModuleState, if non-nil, builds the analyzer's module-wide state
	// before the first package is visited. Every Pass of the run (and the
	// final ModulePass) sees the same value via State.
	NewModuleState func() any
	// Finish, if non-nil, runs once after every package has been visited —
	// the hook for cross-package invariants accumulated in the module state.
	Finish func(*ModulePass) error
}

// Module is one whole-module analyzer run: the shared position table, the
// root directory diagnostics are reported relative to, and the per-analyzer
// module-wide state.
type Module struct {
	Fset *token.FileSet
	// Root is the module root (the go.mod directory) for real runs, or the
	// fixture package directory under analysistest. Analyzers that consult
	// repository files (metricname's OBSERVABILITY.md catalogue) resolve
	// them against Root.
	Root string
	// IncludeTests records whether the driver loaded _test.go files into
	// the run, for analyzers that want to report it in their messages.
	IncludeTests bool

	state map[string]any
}

// NewModule returns a module context rooted at root, sharing fset with the
// loader that produced the packages.
func NewModule(fset *token.FileSet, root string) *Module {
	return &Module{Fset: fset, Root: root, state: make(map[string]any)}
}

// State returns a's module-wide state, building it on first use.
func (m *Module) State(a *Analyzer) any {
	if m.state == nil {
		m.state = make(map[string]any)
	}
	s, ok := m.state[a.Name]
	if !ok && a.NewModuleState != nil {
		s = a.NewModuleState()
		m.state[a.Name] = s
	}
	return s
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string // import path as the driver sees it (may differ from Pkg.Path in fixtures)
	TypesInfo *types.Info
	Module    *Module

	diags *[]Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// State returns the analyzer's module-wide state (see Analyzer.NewModuleState).
func (p *Pass) State() any {
	if p.Module == nil {
		return nil
	}
	return p.Module.State(p.Analyzer)
}

// InTestFile reports whether pos falls in a _test.go file. Test files enter
// a run only under the driver's -include-tests; analyzers whose invariant is
// production-only (floateq's tolerance rule, metricname's catalogue) keep
// exempting them explicitly with this predicate.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ModulePass is the context of one analyzer's Finish hook.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	diags *[]Diagnostic
}

// State returns the analyzer's module-wide state.
func (mp *ModulePass) State() any { return mp.Module.State(mp.Analyzer) }

// Reportf records a diagnostic at an already-resolved position (Finish runs
// after the AST walks, so callers carry token.Position in their state).
func (mp *ModulePass) Reportf(pos token.Position, format string, args ...interface{}) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Analyzer: mp.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunModule applies every analyzer to every package, runs the Finish hooks,
// filters suppressed diagnostics, audits the suppressions, and returns the
// surviving diagnostics in deterministic cross-package order. The packages
// must share m.Fset.
func RunModule(m *Module, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	supps := collectSuppressions(m.Fset, pkgs)

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.TypesInfo,
				Module:    m,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Module: m, diags: &diags}
		if err := a.Finish(mp); err != nil {
			return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
		}
	}

	diags = applySuppressions(diags, supps)
	diags = append(diags, auditSuppressions(supps, analyzers)...)

	sortDiagnostics(diags)
	return diags, nil
}

// Run applies each analyzer to a single package — the pre-module entry point,
// kept for one-package callers. Suppressions in the package are honored and
// audited exactly as in a module run.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	m := NewModule(pkg.Fset, pkg.Dir)
	return RunModule(m, []*Package{pkg}, analyzers)
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer, and
// finally message, so whole-module output is reproducible run to run.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}
