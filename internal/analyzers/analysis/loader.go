package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages without the go/packages machinery.
// Standard-library imports are satisfied by the compiler's source importer
// (type-checking GOROOT sources on demand); imports within the enclosing
// module are resolved recursively against ModuleRoot. Results are memoized
// into one shared type-check cache, so a whole-module run type-checks each
// dependency exactly once no matter how many packages import it.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod; empty for fixture
	// loading.
	ModuleRoot string
	// ModulePath is the module's import path prefix from go.mod.
	ModulePath string
	// FixtureRoot, when set, resolves non-stdlib import paths against a
	// fixture tree: importing "internal/obs" loads FixtureRoot/internal/obs.
	// analysistest points this at the testdata/src directory so fixture
	// packages can import stand-in dependencies.
	FixtureRoot string

	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at the module containing dir (walking
// up to the nearest go.mod). Pass "" to build a fixture loader restricted
// to standard-library imports.
func NewLoader(dir string) (*Loader, error) {
	l := &Loader{Fset: token.NewFileSet(), pkgs: make(map[string]*Package)}
	l.std = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	if dir == "" {
		return l, nil
	}
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l.ModuleRoot, l.ModulePath = root, path
	return l, nil
}

// NewFixtureLoader returns a loader whose non-stdlib imports resolve under
// root (conventionally a testdata/src directory).
func NewFixtureLoader(root string) (*Loader, error) {
	l, err := NewLoader("")
	if err != nil {
		return nil, err
	}
	l.FixtureRoot = root
	return l, nil
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (string, string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer for the package loader: module-local
// paths load from source under ModuleRoot, everything else falls back to
// the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if sub, ok := l.moduleDir(path); ok {
		// The import path is already known; fixture trees have no module
		// layout to re-derive it from, so load under it directly.
		pkg, err := l.load(sub, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// moduleDir maps a module-local (or fixture-local) import path to its
// directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
	if l.ModulePath == "" {
		return "", false
	}
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if abs == l.ModuleRoot {
		return l.ModulePath, nil
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the non-test package in dir, deriving its
// import path from the module layout.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(dir, path)
}

// LoadFixture loads dir as a fixture package under an explicit import path
// (so checkers keyed on path shape, like nakedpanic's internal/ scoping,
// can be exercised from testdata).
func (l *Loader) LoadFixture(dir, pkgPath string) (*Package, error) {
	return l.load(dir, pkgPath)
}

func (l *Loader) load(dir, pkgPath string) (*Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
		}
		return pkg, nil
	}
	l.pkgs[pkgPath] = nil // cycle guard

	files, err := parseGoDir(l.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	pkg, err := l.check(dir, pkgPath, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// check type-checks one file set as a package without touching the memoized
// import cache — the building block for both the cached import graph and the
// uncached test-augmented variants.
func (l *Loader) check(dir, pkgPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.Fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// parseGoDir parses every non-test .go file in dir (sorted for determinism).
func parseGoDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	return parseGoFiles(fset, dir, false)
}

// parseGoFiles parses the .go files of dir — only non-test files, or only
// _test.go files — sorted for determinism.
func parseGoFiles(fset *token.FileSet, dir string, testFiles bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") != testFiles {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDirWithTests returns the package variants of dir a test-inclusive run
// analyzes: the package with its in-package _test.go files folded in, plus —
// when present — the external "_test" package. The plain package (the one
// other packages import) is loaded first so the shared cache and the import
// graph are identical to a non-test run; the test variants are type-checked
// on top of it and are never importable.
func (l *Loader) LoadDirWithTests(dir string) ([]*Package, error) {
	base, err := l.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	testFiles, err := parseGoFiles(l.Fset, dir, true)
	if err != nil {
		return nil, err
	}
	if len(testFiles) == 0 {
		return []*Package{base}, nil
	}
	var inPkg, external []*ast.File
	for _, f := range testFiles {
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}

	out := []*Package{base}
	if len(inPkg) > 0 {
		aug, err := l.check(dir, base.PkgPath, append(append([]*ast.File{}, base.Syntax...), inPkg...))
		if err != nil {
			return nil, err
		}
		out[0] = aug // analyze the augmented variant instead of the base
	}
	if len(external) > 0 {
		ext, err := l.check(dir, base.PkgPath+"_test", external)
		if err != nil {
			return nil, err
		}
		out = append(out, ext)
	}
	return out, nil
}

// PackageDirs returns every directory under root holding a non-test Go
// package, skipping testdata, hidden directories, and vendor trees — the
// expansion of the "./..." pattern.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files of one directory contiguously, but keep the
	// dedup robust to ordering anyway.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}
