package analysis_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/nakedpanic"
)

// TestSuppressionAudit drives the framework-level suppression machinery end
// to end: masking of a named analyzer's findings, plus the auditor's
// malformed / unknown-analyzer / stale diagnostics.
func TestSuppressionAudit(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/m/internal/a", nakedpanic.Analyzer)
}
