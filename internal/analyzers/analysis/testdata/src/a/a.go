// Package a is the suppression-audit fixture, loaded under an internal/
// import path so nakedpanic produces maskable findings. It covers the four
// auditor outcomes: a used suppression (silent), a malformed one, one
// naming an unknown analyzer, and a stale one masking nothing.
package a

func suppressedOK(n int) int {
	if n < 0 {
		// lint:invariant(nakedpanic): n is validated non-negative by every caller
		panic("unreachable")
	}
	return n
}

func malformed() {
	// lint:invariant missing the analyzer name and reason // want `malformed suppression; the grammar is`
	panic("boom") // want `panic in internal library package`
}

func unknownAnalyzer() int {
	// lint:invariant(notarealanalyzer): suppressing a rule that does not exist // want `suppression names unknown analyzer "notarealanalyzer"`
	return 1
}

func stale() int {
	// lint:invariant(nakedpanic): nothing here panics anymore // want `stale suppression: no nakedpanic finding`
	return 2
}
