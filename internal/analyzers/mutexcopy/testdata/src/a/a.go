// Package a is the mutexcopy fixture: sync primitives (including ones
// buried in struct fields) must move by pointer, never by value.
package a

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type byPtr struct{ mu *sync.Mutex }

func badParam(mu sync.Mutex) { // want `parameter copies sync.Mutex by value`
	_ = mu
}

func badResult() (wg sync.WaitGroup) { // want `result copies sync.WaitGroup by value`
	return
}

func (g guarded) badRecv() {} // want `receiver copies sync.Mutex by value`

func badAssign(g *guarded) int {
	h := *g // want `assignment copies sync.Mutex by value`
	return h.n
}

func badRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range copies sync.Mutex by value each iteration`
		total += g.n
	}
	return total
}

func take(g guarded) { // want `parameter copies sync.Mutex by value`
	_ = g.n
}

func badArg(g *guarded) {
	take(*g) // want `argument copies sync.Mutex by value`
}

func goodPointer(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func goodPtrField(b byPtr) byPtr { // *sync.Mutex field: no state is forked
	c := b
	return c
}

func goodFresh() *guarded {
	g := guarded{} // fresh construction, not a copy of shared state
	return &g
}

func suppressedSnapshot(g *guarded) int {
	// lint:invariant(mutexcopy): shutdown-time snapshot; no goroutine holds g.mu anymore
	h := *g
	return h.n
}
