package mutexcopy_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/mutexcopy"
)

func TestMutexCopy(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/a", mutexcopy.Analyzer)
}
