// Package mutexcopy flags sync primitives copied by value.
//
// A copied sync.Mutex/RWMutex/WaitGroup/Once/Cond/Map/Pool forks its internal
// state: the copy and the original lock independently, which silently voids
// every mutual-exclusion argument the concurrent engine (and the upcoming
// defenderd broker) depends on. The analyzer is type-aware — it follows
// struct embedding and arrays to find buried sync state — and flags
//
//   - function parameters, results, and receivers declared by value,
//   - assignments and variable declarations that copy such a value,
//   - range clauses whose element copies such a value, and
//   - call arguments passed by value.
//
// Tests are not exempt: a copied lock corrupts a test's synchronization just
// as thoroughly, so the check applies to _test.go files whenever the driver
// loads them (-include-tests).
package mutexcopy

import (
	"go/ast"
	"go/types"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer flags by-value copies of sync primitives.
var Analyzer = &analysis.Analyzer{
	Name: "mutexcopy",
	Doc:  "flag sync.Mutex/RWMutex/WaitGroup/... copied by value; pass pointers instead",
	Run:  run,
}

// syncTypes are the sync package types whose value copies are bugs.
var syncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Map": true, "Pool": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch nd := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(pass, nd.Recv, "receiver")
				if nd.Type != nil {
					checkFieldList(pass, nd.Type.Params, "parameter")
					checkFieldList(pass, nd.Type.Results, "result")
				}
			case *ast.FuncLit:
				checkFieldList(pass, nd.Type.Params, "parameter")
				checkFieldList(pass, nd.Type.Results, "result")
			case *ast.AssignStmt:
				if len(nd.Lhs) == len(nd.Rhs) {
					for i := range nd.Rhs {
						if isBlank(nd.Lhs[i]) {
							continue // discarded, not copied into anything
						}
						checkCopyExpr(pass, nd.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for _, v := range nd.Values {
					checkCopyExpr(pass, v)
				}
			case *ast.RangeStmt:
				if nd.Value != nil && !isBlank(nd.Value) {
					if name := syncIn(defType(pass, nd.Value)); name != "" {
						pass.Reportf(nd.Value.Pos(), "range copies sync.%s by value each iteration; range over indices or pointers", name)
					}
				}
			case *ast.CallExpr:
				checkCallArgs(pass, nd)
			}
			return true
		})
	}
	return nil
}

// checkFieldList flags by-value sync-bearing declarations in a parameter,
// result, or receiver list.
func checkFieldList(pass *analysis.Pass, fl *ast.FieldList, role string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := pass.TypesInfo.Types[f.Type].Type
		if t == nil {
			continue
		}
		if name := syncIn(t); name != "" {
			pass.Reportf(f.Type.Pos(), "%s copies sync.%s by value; use a pointer", role, name)
		}
	}
}

// checkCopyExpr flags an assignment right-hand side that copies an existing
// sync-bearing value. Fresh construction (composite literals, conversions,
// function returns) is not a copy of shared state and stays allowed — the
// producing declaration is flagged instead.
func checkCopyExpr(pass *analysis.Pass, rhs ast.Expr) {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if name := syncIn(typeOf(pass, rhs)); name != "" {
			pass.Reportf(rhs.Pos(), "assignment copies sync.%s by value; share a pointer instead", name)
		}
	}
}

// checkCallArgs flags sync-bearing values passed by value as arguments.
func checkCallArgs(pass *analysis.Pass, call *ast.CallExpr) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	for _, arg := range call.Args {
		switch ast.Unparen(arg).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if name := syncIn(typeOf(pass, arg)); name != "" {
				pass.Reportf(arg.Pos(), "argument copies sync.%s by value; pass a pointer", name)
			}
		}
	}
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// defType resolves e's type even when e is a defining identifier (a `:=`
// range variable), which the Types map does not record.
func defType(pass *analysis.Pass, e ast.Expr) types.Type {
	if t := typeOf(pass, e); t != nil {
		return t
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// syncIn returns the name of a sync primitive reachable by value inside t
// (directly, through struct fields, or through array elements), or "".
func syncIn(t types.Type) string {
	return syncInRec(t, make(map[types.Type]bool))
}

func syncInRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncTypes[obj.Name()] {
			return obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := syncInRec(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return syncInRec(u.Elem(), seen)
	}
	return ""
}
