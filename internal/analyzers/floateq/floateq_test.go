package floateq_test

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysistest"
	"github.com/defender-game/defender/internal/analyzers/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "example.com/a", floateq.Analyzer)
}
