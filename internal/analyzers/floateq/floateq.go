// Package floateq flags == and != between floating-point operands in
// non-test code.
//
// Equilibrium conditions in this repo are verified in exact rational
// arithmetic; wherever floats appear (learning dynamics, simulation
// statistics) equality must be expressed either by converting to *big.Rat
// or against an explicit, documented tolerance constant. A raw float
// equality is almost always a latent bug: two mathematically equal
// quantities computed along different paths need not compare equal in
// IEEE-754.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// Analyzer flags floating-point equality comparisons outside tests.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floating-point operands outside _test.go files",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt := pass.TypesInfo.Types[bin.X]
			yt := pass.TypesInfo.Types[bin.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant expression, decided at compile time
			}
			pass.Reportf(bin.OpPos, "floating-point %s comparison; compare exact rationals or use a documented tolerance", bin.Op)
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
