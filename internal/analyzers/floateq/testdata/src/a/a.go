// Package a is the floateq fixture: float equality flagged, ordered
// comparisons and integer equality not.
package a

const tol = 1e-9

func flagged(x, y float64, f32 float32) bool {
	if x == y { // want `floating-point == comparison`
		return true
	}
	if x != 0 { // want `floating-point != comparison`
		return false
	}
	var mixed float64
	return f32 == 1.5 || mixed == y // want `floating-point == comparison` `floating-point == comparison`
}

func clean(x, y float64, n, m int) bool {
	if n == m { // integers: ok
		return true
	}
	if x < y || x >= y { // ordered comparisons: ok
		return false
	}
	diff := x - y
	if diff < 0 {
		diff = -diff
	}
	const half = 0.5
	_ = half == 0.25 // both constant, decided at compile time: ok
	return diff <= tol
}
