// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want "regexp" comments, following the
// conventions of golang.org/x/tools/go/analysis/analysistest: a fixture
// line may carry one or more expectations, each a double-quoted Go string
// holding a regular expression that must match a diagnostic reported on
// that line. Unmatched diagnostics and unsatisfied expectations both fail
// the test.
package analysistest

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// expectation is one // want entry: a compiled regexp anchored to a line.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	met  bool
}

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture package rooted at dir under the given import path,
// applies the analyzer through the whole-module engine, and reports
// mismatches through t. The import path matters for analyzers scoped by
// package location (e.g. nakedpanic only fires inside internal/ trees).
//
// Non-stdlib imports in fixture files resolve against dir's parent — a
// fixture at testdata/src/errlost may import "internal/rat" and get the
// stand-in at testdata/src/internal/rat. The module root is dir itself, so
// analyzers that read module-root files (metricname's OBSERVABILITY.md
// catalogue) pick up per-fixture copies. The suppression auditor runs as in
// production: its findings are matched against // want comments like any
// analyzer's.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewFixtureLoader(filepath.Dir(dir))
	if err != nil {
		t.Fatalf("analysistest: new loader: %v", err)
	}
	pkg, err := loader.LoadFixture(dir, pkgPath)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}
	module := analysis.NewModule(loader.Fset, dir)
	diags, err := analysis.RunModule(module, []*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: run %s: %v", a.Name, err)
	}

	expects, err := parseExpectations(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// claim marks the first unmet expectation matching d and reports success.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	base := filepath.Base(d.Pos.Filename)
	for _, e := range expects {
		if !e.met && e.file == base && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
			e.met = true
			return true
		}
	}
	return false
}

// parseExpectations scans every .go file under dir for // want comments.
func parseExpectations(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for _, entry := range entries {
		if entry.IsDir() || !strings.HasSuffix(entry.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, entry.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		scanner := bufio.NewScanner(f)
		for line := 1; scanner.Scan(); line++ {
			m := wantRx.FindStringSubmatch(scanner.Text())
			if m == nil {
				continue
			}
			patterns, err := splitQuoted(m[1])
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("%s:%d: malformed want: %v", entry.Name(), line, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", entry.Name(), line, p, err)
				}
				out = append(out, &expectation{file: entry.Name(), line: line, re: re})
			}
		}
		if err := scanner.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return out, nil
}

// splitQuoted parses a sequence of space-separated double-quoted or
// backquoted Go strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated string in %q", s)
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
