// Command loadgen drives sustained traffic against a running defenderd
// (cmd/defenderd) and records the observed request throughput and latency
// percentiles as a schema-v2 bench record (internal/benchrec), so serve
// performance lands in the same bench/history trajectory — and under the
// same cmd/benchdiff regression gate — as the experiment tables and the
// arithmetic kernels.
//
// Usage:
//
//	loadgen [-addr http://127.0.0.1:8080] [-spec cycle:12] [-k 2]
//	        [-attackers 1] [-duration 10s] [-concurrency 32]
//	        [-bench-out FILE] [-bench-history DIR] [-min-rps 0]
//
// The workload is the service's steady state: one warm-up solve
// populates the response cache, then every concurrent worker re-requests
// the same instance for the full duration, so the run measures the
// broker + cache + encode path (thousands of requests per second), not
// the solver. Any non-200 response fails the run, as does a throughput
// below -min-rps. Exit codes: 0 ok, 1 run or threshold failure, 2 usage
// error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/defender-game/defender/internal/benchrec"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/gspec"
	"github.com/defender-game/defender/internal/obs"
)

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
		os.Exit(0)
	case err == flag.ErrHelp:
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// result aggregates one worker's share of the run.
type result struct {
	latencies []time.Duration
	errors    int
	lastErr   error
	// slowest / slowestTrace track the worker's worst request and its
	// X-Defender-Trace-Id, so the bench record can point at the waterfall
	// of the run's max-latency outlier (tracetool -trace ID).
	slowest      time.Duration
	slowestTrace string
}

// run executes the load phase and returns an error when the run itself
// failed or a threshold was missed. It is the whole command — the tests
// run it against an httptest server.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "base URL of the defenderd under test")
		spec        = fs.String("spec", "cycle:12", "graph spec of the solved instance (internal/gspec syntax)")
		k           = fs.Int("k", 2, "defender power of the instance")
		attackers   = fs.Int("attackers", 1, "attacker count of the instance")
		duration    = fs.Duration("duration", 10*time.Second, "how long to sustain the load")
		concurrency = fs.Int("concurrency", 32, "concurrent client workers")
		benchOut    = fs.String("bench-out", "", "write the schema-v2 bench record to this file")
		benchHist   = fs.String("bench-history", "", "append the bench record to this history directory")
		minRPS      = fs.Float64("min-rps", 0, "fail the run below this request throughput")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *concurrency < 1 || *duration <= 0 {
		return fmt.Errorf("need -concurrency >= 1 and -duration > 0")
	}

	g, err := gspec.Parse(*spec)
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	g6, err := graph.FormatGraph6(g)
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	body, err := requestBody(g6, *k, *attackers)
	if err != nil {
		return err
	}
	url := *addr + "/v1/solve"
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	// Warm-up: one full solve primes the response cache (and proves the
	// target is actually up) before the clock starts.
	if status, _, err := post(client, url, body); err != nil {
		return fmt.Errorf("warm-up request: %w", err)
	} else if status != http.StatusOK {
		return fmt.Errorf("warm-up request: status %d (is defenderd serving %s?)", status, *spec)
	}

	results := make([]result, *concurrency)
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(res *result) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				status, traceID, err := post(client, url, body)
				if err != nil || status != http.StatusOK {
					res.errors++
					if err == nil {
						err = fmt.Errorf("status %d", status)
					}
					res.lastErr = err
					continue
				}
				lat := time.Since(t0)
				res.latencies = append(res.latencies, lat)
				if lat > res.slowest {
					res.slowest = lat
					res.slowestTrace = traceID
				}
			}
		}(&results[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errCount := 0
	var lastErr error
	var slowest time.Duration
	slowestTrace := ""
	for i := range results {
		all = append(all, results[i].latencies...)
		errCount += results[i].errors
		if results[i].lastErr != nil {
			lastErr = results[i].lastErr
		}
		if results[i].slowest > slowest {
			slowest = results[i].slowest
			slowestTrace = results[i].slowestTrace
		}
	}
	if len(all) == 0 {
		return fmt.Errorf("no request completed (last error: %v)", lastErr)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rps := float64(len(all)) / elapsed.Seconds()
	p50, p95, p99 := percentile(all, 0.50), percentile(all, 0.95), percentile(all, 0.99)
	max := all[len(all)-1]

	fmt.Fprintf(stdout, "loadgen: %s k=%d ν=%d against %s\n", *spec, *k, *attackers, *addr)
	fmt.Fprintf(stdout, "loadgen: %d requests in %.1fs (%d workers): %.0f req/s, %d errors\n",
		len(all), elapsed.Seconds(), *concurrency, rps, errCount)
	fmt.Fprintf(stdout, "loadgen: latency p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		ms(p50), ms(p95), ms(p99), ms(max))
	if slowestTrace != "" {
		fmt.Fprintf(stdout, "loadgen: slowest request trace %s (tracetool -trace %s TRACE.jsonl)\n",
			slowestTrace, slowestTrace)
	}

	rep := &benchrec.Report{
		Suite:            "loadgen",
		WorkersRequested: *concurrency,
		WorkersEffective: *concurrency,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		BenchRepeat:      1,
		TotalWallMS:      ms(elapsed),
		Tables: []benchrec.Table{{
			ID:             "serve_solve",
			Rows:           1,
			Cells:          len(all),
			CellTiming:     true,
			Samples:        1,
			WallMS:         ms(elapsed),
			CellsPerSec:    rps,
			CellP50MS:      ms(p50),
			CellP95MS:      ms(p95),
			CellP99MS:      ms(p99),
			CellMaxMS:      ms(max),
			SlowestTraceID: slowestTrace,
		}},
		Metrics: obs.Default().Snapshot(),
	}
	rep.StampEnvironment("")
	if *benchOut != "" {
		if err := rep.Save(*benchOut); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loadgen: bench record written to %s\n", *benchOut)
	}
	if *benchHist != "" {
		path, err := benchrec.AppendHistory(*benchHist, rep)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loadgen: bench record appended to %s\n", path)
	}

	if errCount > 0 {
		return fmt.Errorf("%d of %d requests failed (last error: %v)", errCount, errCount+len(all), lastErr)
	}
	if *minRPS > 0 && rps < *minRPS {
		return fmt.Errorf("throughput %.0f req/s below the -min-rps floor of %.0f", rps, *minRPS)
	}
	return nil
}

// requestBody renders the solve request once; every worker reuses it.
func requestBody(g6 string, k, attackers int) ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"graph6":%q,"k":%d`, g6, k)
	if attackers != 1 {
		fmt.Fprintf(&b, `,"attackers":%d`, attackers)
	}
	b.WriteString("}")
	return b.Bytes(), nil
}

// post sends one solve request, fully drains the response so the
// connection is reused, and returns the status plus the response's
// X-Defender-Trace-Id.
func post(client *http.Client, url string, body []byte) (int, string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get("X-Defender-Trace-Id")
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, traceID, err
	}
	return resp.StatusCode, traceID, nil
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
