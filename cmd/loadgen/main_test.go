package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/defender-game/defender/internal/benchrec"
	"github.com/defender-game/defender/internal/server"
)

// startTarget serves the real solve API in-process for loadgen to hit.
func startTarget(t *testing.T) *httptest.Server {
	t.Helper()
	api := server.New(server.Config{Workers: 2, QueueCap: 64})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = api.Close(ctx)
	})
	return ts
}

// TestRunAgainstLiveServer drives a short real run end to end: traffic,
// summary, bench record, history append.
func TestRunAgainstLiveServer(t *testing.T) {
	ts := startTarget(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_loadgen.json")
	hist := filepath.Join(dir, "history")

	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-spec", "cycle:8",
		"-k", "2",
		"-duration", "300ms",
		"-concurrency", "4",
		"-bench-out", out,
		"-bench-history", hist,
		"-min-rps", "1",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "req/s") {
		t.Errorf("summary missing throughput line:\n%s", stdout.String())
	}

	rep, err := benchrec.Load(out)
	if err != nil {
		t.Fatalf("bench record: %v", err)
	}
	if rep.Suite != "loadgen" || len(rep.Tables) != 1 {
		t.Fatalf("report shape: suite %q, %d tables", rep.Suite, len(rep.Tables))
	}
	tab := rep.Tables[0]
	if tab.ID != "serve_solve" || !tab.CellTiming || tab.Cells < 1 {
		t.Errorf("table: %+v", tab)
	}
	if tab.CellP50MS <= 0 || tab.CellP99MS < tab.CellP50MS {
		t.Errorf("percentiles not monotone: p50 %.3f p99 %.3f", tab.CellP50MS, tab.CellP99MS)
	}
	// Every response carries X-Defender-Trace-Id, so the record must
	// link its worst request to a trace.
	if len(tab.SlowestTraceID) != 32 {
		t.Errorf("slowest_trace_id = %q, want a 32-hex trace id", tab.SlowestTraceID)
	}
	if !strings.Contains(stdout.String(), "slowest request trace "+tab.SlowestTraceID) {
		t.Errorf("summary does not name the slowest trace:\n%s", stdout.String())
	}
	paths, err := benchrec.ListHistory(hist)
	if err != nil || len(paths) != 1 {
		t.Errorf("history append: %v, %v", paths, err)
	}
}

// TestRunMinRPSFailure: an unreachable throughput floor fails the run
// after the traffic succeeded.
func TestRunMinRPSFailure(t *testing.T) {
	ts := startTarget(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-spec", "path:4",
		"-k", "1",
		"-duration", "100ms",
		"-concurrency", "2",
		"-min-rps", "1e12",
	}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "below the -min-rps floor") {
		t.Errorf("want min-rps failure, got %v", err)
	}
}

// TestRunRejectsBadTarget: a dead target fails at warm-up, before any
// load is generated.
func TestRunRejectsBadTarget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-addr", "http://127.0.0.1:1",
		"-duration", "100ms",
	}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "warm-up") {
		t.Errorf("want warm-up failure, got %v", err)
	}
}

// TestRunRejectsBadSpec: spec errors are usage errors, not traffic.
func TestRunRejectsBadSpec(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-spec", "nonsense:9"}, &stdout, &stderr); err == nil {
		t.Error("bad spec must fail")
	}
	if err := run([]string{"-concurrency", "0"}, &stdout, &stderr); err == nil {
		t.Error("zero concurrency must fail")
	}
	if err := run([]string{"positional"}, &stdout, &stderr); err == nil {
		t.Error("positional arguments must be rejected")
	}
}

// TestPercentileNearestRank pins the percentile convention.
func TestPercentileNearestRank(t *testing.T) {
	sample := make([]time.Duration, 100)
	for i := range sample {
		sample[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.0, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(sample, c.q); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.q*100, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty sample: %v", got)
	}
	if got := percentile(sample[:1], 0.01); got != time.Millisecond {
		t.Errorf("rank floor: %v", got)
	}
}

// TestWarmupStatusFailure: a structured API rejection at warm-up (bad k)
// is surfaced with its status.
func TestWarmupStatusFailure(t *testing.T) {
	ts := startTarget(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-spec", "path:4",
		"-k", "99",
		"-duration", "100ms",
	}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "status 422") {
		t.Errorf("want warm-up 422 failure, got %v", err)
	}
}
