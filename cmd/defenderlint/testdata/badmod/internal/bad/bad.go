// Package bad seeds exactly one violation for each of several analyzers, so
// main_test.go can pin down the driver's exit-code contract, per-analyzer
// summary counts, and output formats against known findings. The go tool
// never builds testdata; only the driver's own loader reads this file.
package bad

import (
	"errors"
	"sync"
)

func mayFail() error { return errors.New("seeded") }

func dropsError() {
	_ = mayFail() // seeded errlost finding
}

func panics(n int) {
	if n > 0 {
		panic("seeded") // seeded nakedpanic finding
	}
}

func copiesMutex(mu sync.Mutex) {} // seeded mutexcopy finding

func floatEq(a, b float64) bool {
	return a == b // seeded floateq finding
}

func stale() int {
	// lint:invariant(floateq): seeded stale suppression; nothing below compares floats
	return 1
}
