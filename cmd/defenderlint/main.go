// Command defenderlint runs the project's invariant analyzers (ratalias,
// floateq, globalrand, nakedpanic) over packages of this module — a
// multichecker in the style of golang.org/x/tools/go/analysis/multichecker,
// built on the dependency-free framework in internal/analyzers/analysis.
//
// Usage:
//
//	go run ./cmd/defenderlint [-only names] [-list] [patterns]
//
// Patterns are package directories or the recursive pattern "./...". With
// no pattern, "./..." is assumed. The exit status is 0 when the tree is
// clean, 1 when diagnostics were reported, and 2 on a driver error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/defender-game/defender/internal/analyzers"
	"github.com/defender-game/defender/internal/analyzers/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	flags := flag.NewFlagSet("defenderlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	only := flags.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flags.Bool("list", false, "list registered analyzers and exit")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	if *only != "" {
		suite = filterAnalyzers(suite, *only)
		if len(suite) == 0 {
			fmt.Fprintf(stderr, "defenderlint: no analyzer matches -only=%s\n", *only)
			return 2
		}
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := Lint(".", patterns, suite)
	if err != nil {
		fmt.Fprintf(stderr, "defenderlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// Lint loads every package matched by patterns (relative to dir) and runs
// the suite, returning all diagnostics sorted by position.
func Lint(dir string, patterns []string, suite []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []analysis.Diagnostic
	for _, pkgDir := range dirs {
		pkg, err := loader.LoadDir(pkgDir)
		if err != nil {
			return nil, err
		}
		diags, err := analysis.Run(pkg, suite)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// expand resolves package patterns to package directories.
func expand(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(base, filepath.Clean(rest))
			subs, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range subs {
				add(d)
			}
			continue
		}
		add(filepath.Join(base, pat))
	}
	return dirs, nil
}

func filterAnalyzers(suite []*analysis.Analyzer, only string) []*analysis.Analyzer {
	want := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range suite {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
