// Command defenderlint runs the project's ten invariant analyzers (plus
// the suppression auditor) over packages of this module — a multichecker in
// the style of golang.org/x/tools/go/analysis/multichecker, built on the
// dependency-free whole-module engine in internal/analyzers/analysis.
//
// Usage:
//
//	go run ./cmd/defenderlint [flags] [patterns]
//
//	-only names     report only these analyzers (comma-separated)
//	-skip names     report all but these analyzers
//	-format kind    output format: text (default), json, or sarif
//	-o file         write the report to file instead of stdout
//	-include-tests  also analyze _test.go files
//	-list           list registered analyzers and exit
//
// Patterns are package directories or the recursive pattern "./...". With
// no pattern, "./..." is assumed.
//
// Every analyzer always runs: -only and -skip filter what is *reported*,
// not what executes. Filtering at the report stage keeps two properties the
// cheap alternative would lose — type-checking dominates the cost anyway,
// and suppression staleness stays truthful (a lint:invariant(floateq)
// comment is not "stale" merely because a -only=errlost run ignored
// floateq). The auditor participates under the name "suppression", so a CI
// stale-suppression gate is just `-only suppression`.
//
// The exit status is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 on a driver error (bad flags, unknown analyzer names,
// load or type-check failure).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/defender-game/defender/internal/analyzers"
	"github.com/defender-game/defender/internal/analyzers/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("defenderlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	only := flags.String("only", "", "comma-separated analyzer names to report (default: all)")
	skip := flags.String("skip", "", "comma-separated analyzer names to suppress from the report")
	format := flags.String("format", "text", "output format: text, json, or sarif")
	outFile := flags.String("o", "", "write the report to this file instead of stdout")
	includeTests := flags.Bool("include-tests", false, "also analyze _test.go files")
	list := flags.Bool("list", false, "list registered analyzers and exit")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(stdout, "%-12s %s\n", analysis.AuditorName, analysis.AuditorDoc)
		return 0
	}
	reportable, err := reportFilter(suite, *only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "defenderlint: %v\n", err)
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "defenderlint: unknown -format=%s (want text, json, or sarif)\n", *format)
		return 2
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, root, err := Lint(".", patterns, suite, *includeTests)
	if err != nil {
		fmt.Fprintf(stderr, "defenderlint: %v\n", err)
		return 2
	}
	reported := diags[:0]
	for _, d := range diags {
		if reportable[d.Analyzer] {
			reported = append(reported, d)
		}
	}

	out := stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(stderr, "defenderlint: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	if err := write(out, *format, reported, suite, root); err != nil {
		fmt.Fprintf(stderr, "defenderlint: %v\n", err)
		return 2
	}

	fmt.Fprintln(stderr, summary(reported))
	if len(reported) > 0 {
		return 1
	}
	return 0
}

// Lint loads every package matched by patterns (relative to dir) and runs
// the full suite through the module engine, returning all diagnostics
// sorted by position plus the module root for path rendering.
func Lint(dir string, patterns []string, suite []*analysis.Analyzer, includeTests bool) ([]analysis.Diagnostic, string, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, "", err
	}
	dirs, err := expand(dir, patterns)
	if err != nil {
		return nil, "", err
	}
	var pkgs []*analysis.Package
	for _, pkgDir := range dirs {
		if includeTests {
			variants, err := loader.LoadDirWithTests(pkgDir)
			if err != nil {
				return nil, "", err
			}
			pkgs = append(pkgs, variants...)
			continue
		}
		pkg, err := loader.LoadDir(pkgDir)
		if err != nil {
			return nil, "", err
		}
		pkgs = append(pkgs, pkg)
	}
	module := analysis.NewModule(loader.Fset, loader.ModuleRoot)
	module.IncludeTests = includeTests
	diags, err := analysis.RunModule(module, pkgs, suite)
	if err != nil {
		return nil, "", err
	}
	return diags, loader.ModuleRoot, nil
}

// write renders the report in the requested format.
func write(w io.Writer, format string, diags []analysis.Diagnostic, suite []*analysis.Analyzer, root string) error {
	switch format {
	case "json":
		return analysis.WriteJSON(w, diags, root)
	case "sarif":
		return analysis.WriteSARIF(w, diags, suite, root)
	default:
		for _, d := range diags {
			if _, err := fmt.Fprintln(w, d); err != nil {
				return err
			}
		}
		return nil
	}
}

// summary formats the per-analyzer finding counts for stderr.
func summary(diags []analysis.Diagnostic) string {
	if len(diags) == 0 {
		return "defenderlint: clean"
	}
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s %d", name, counts[name]))
	}
	noun := "findings"
	if len(diags) == 1 {
		noun = "finding"
	}
	return fmt.Sprintf("defenderlint: %d %s (%s)", len(diags), noun, strings.Join(parts, ", "))
}

// reportFilter resolves -only/-skip into the set of analyzer names whose
// diagnostics are reported. Unknown names are an error — a typo silently
// filtering nothing would defeat a CI gate.
func reportFilter(suite []*analysis.Analyzer, only, skip string) (map[string]bool, error) {
	if only != "" && skip != "" {
		return nil, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	known := make(map[string]bool, len(suite)+1)
	for _, a := range suite {
		known[a.Name] = true
	}
	known[analysis.AuditorName] = true

	parse := func(flagName, value string) (map[string]bool, error) {
		set := make(map[string]bool)
		for _, name := range strings.Split(value, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				return nil, fmt.Errorf("unknown analyzer %q in %s (see -list)", name, flagName)
			}
			set[name] = true
		}
		return set, nil
	}

	switch {
	case only != "":
		return parse("-only", only)
	case skip != "":
		skipped, err := parse("-skip", skip)
		if err != nil {
			return nil, err
		}
		out := make(map[string]bool, len(known))
		for name := range known {
			out[name] = !skipped[name]
		}
		return out, nil
	default:
		return known, nil
	}
}

// expand resolves package patterns to package directories.
func expand(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(base, filepath.Clean(rest))
			subs, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range subs {
				add(d)
			}
			continue
		}
		add(filepath.Join(base, pat))
	}
	return dirs, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
