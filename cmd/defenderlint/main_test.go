package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/defender-game/defender/internal/analyzers"
	"github.com/defender-game/defender/internal/analyzers/analysis"
)

// badmod is the seeded-violation fixture tree: one finding each for errlost,
// floateq, mutexcopy, nakedpanic, and the suppression auditor.
const badmod = "testdata/badmod/..."

// seededCounts is what the fixture is built to produce.
var seededCounts = map[string]int{
	"errlost": 1, "floateq": 1, "mutexcopy": 1, "nakedpanic": 1, "suppression": 1,
}

// TestRepositoryIsLintClean runs the full analyzer suite — test files
// included, as in CI — over the whole module and requires zero diagnostics:
// the repo must stay clean under its own invariant checks, so regressions
// fail `go test` directly rather than only the CI lint step.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	diags, _, err := Lint("../..", []string{"./..."}, analyzers.All(), true)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("repository has %d defenderlint findings; fix them or annotate with // lint:invariant(<analyzer>): <reason> where justified", len(diags))
	}
}

// runLint invokes the driver as main would, capturing both streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeFindings(t *testing.T) {
	code, stdout, stderr := runLint(t, badmod)
	if code != 1 {
		t.Fatalf("exit = %d with seeded violations, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for name := range seededCounts {
		if !strings.Contains(stdout, "("+name+")") {
			t.Errorf("stdout has no %s finding:\n%s", name, stdout)
		}
	}
	// The stderr summary carries per-analyzer counts.
	for name, n := range seededCounts {
		want := name + " " + string(rune('0'+n))
		if !strings.Contains(stderr, want) {
			t.Errorf("summary %q does not contain %q", strings.TrimSpace(stderr), want)
		}
	}
}

func TestExitCodeClean(t *testing.T) {
	// The fixture seeds no globalrand findings, and -only filters the
	// report down to that analyzer: exit 0 even though other findings
	// exist.
	code, stdout, _ := runLint(t, "-only", "globalrand", badmod)
	if code != 0 {
		t.Fatalf("exit = %d with -only globalrand, want 0\nstdout:\n%s", code, stdout)
	}
	if strings.TrimSpace(stdout) != "" {
		t.Fatalf("expected empty report, got:\n%s", stdout)
	}
}

func TestExitCodeDriverError(t *testing.T) {
	if code, _, _ := runLint(t, "no/such/dir"); code != 2 {
		t.Fatalf("exit = %d for a missing package dir, want 2", code)
	}
	if code, _, _ := runLint(t, "-only", "nosuchanalyzer", badmod); code != 2 {
		t.Fatalf("exit = %d for an unknown -only name, want 2", code)
	}
	if code, _, _ := runLint(t, "-format", "nosuchformat", badmod); code != 2 {
		t.Fatalf("exit = %d for an unknown -format, want 2", code)
	}
	if code, _, _ := runLint(t, "-only", "errlost", "-skip", "floateq", badmod); code != 2 {
		t.Fatalf("exit = %d for -only with -skip, want 2", code)
	}
}

func TestSkipFilter(t *testing.T) {
	code, stdout, _ := runLint(t, "-skip", "errlost,floateq,mutexcopy,nakedpanic,suppression", badmod)
	if code != 0 {
		t.Fatalf("exit = %d with every seeded analyzer skipped, want 0\nstdout:\n%s", code, stdout)
	}
	code, stdout, _ = runLint(t, "-skip", "errlost", badmod)
	if code != 1 {
		t.Fatalf("exit = %d with only errlost skipped, want 1", code)
	}
	if strings.Contains(stdout, "(errlost)") {
		t.Fatalf("-skip errlost still reported errlost findings:\n%s", stdout)
	}
}

// TestSuppressionOnlyGate covers the CI stale-suppression step: the auditor
// is addressable as its own analyzer name.
func TestSuppressionOnlyGate(t *testing.T) {
	code, stdout, _ := runLint(t, "-only", "suppression", badmod)
	if code != 1 {
		t.Fatalf("exit = %d with a seeded stale suppression, want 1\nstdout:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "stale suppression") {
		t.Fatalf("expected a stale-suppression finding, got:\n%s", stdout)
	}
}

func TestListIncludesAuditor(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d for -list, want 0", code)
	}
	for _, a := range analyzers.All() {
		if !strings.Contains(stdout, a.Name) {
			t.Errorf("-list omits analyzer %s", a.Name)
		}
	}
	if !strings.Contains(stdout, analysis.AuditorName) {
		t.Errorf("-list omits the suppression auditor")
	}
}

func TestJSONFormat(t *testing.T) {
	code, stdout, _ := runLint(t, "-format", "json", badmod)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var report []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, stdout)
	}
	counts := map[string]int{}
	for _, r := range report {
		counts[r.Analyzer]++
		if r.File == "" || r.Line == 0 || r.Message == "" {
			t.Errorf("incomplete json record: %+v", r)
		}
	}
	for name, n := range seededCounts {
		if counts[name] != n {
			t.Errorf("json reports %d %s findings, want %d", counts[name], name, n)
		}
	}
}

// TestSARIFFormat checks the SARIF 2.1.0 shape CI uploads: schema header,
// one rule per analyzer (plus the auditor), and one result per finding with
// a physical location.
func TestSARIFFormat(t *testing.T) {
	code, stdout, _ := runLint(t, "-format", "sarif", badmod)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("sarif output does not parse: %v\n%s", err, stdout)
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Fatalf("version = %q schema = %q, want SARIF 2.1.0", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("len(runs) = %d, want 1", len(doc.Runs))
	}
	run0 := doc.Runs[0]
	rules := map[string]bool{}
	for _, r := range run0.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, a := range analyzers.All() {
		if !rules[a.Name] {
			t.Errorf("sarif rules omit analyzer %s", a.Name)
		}
	}
	if !rules[analysis.AuditorName] {
		t.Errorf("sarif rules omit the suppression auditor")
	}
	total := 0
	for name, n := range seededCounts {
		total += n
		found := 0
		for _, r := range run0.Results {
			if r.RuleID == name {
				found++
			}
		}
		if found != n {
			t.Errorf("sarif has %d results for %s, want %d", found, name, n)
		}
	}
	if len(run0.Results) != total {
		t.Errorf("sarif has %d results, want %d", len(run0.Results), total)
	}
	for _, r := range run0.Results {
		if len(r.Locations) != 1 {
			t.Errorf("result %q has %d locations, want 1", r.RuleID, len(r.Locations))
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || strings.HasPrefix(loc.ArtifactLocation.URI, "/") {
			t.Errorf("result %q has URI %q, want a relative path", r.RuleID, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %q has startLine %d", r.RuleID, loc.Region.StartLine)
		}
	}
}

func TestSummary(t *testing.T) {
	if got := summary(nil); got != "defenderlint: clean" {
		t.Fatalf("summary(nil) = %q", got)
	}
	diags := []analysis.Diagnostic{
		{Analyzer: "errlost"}, {Analyzer: "errlost"}, {Analyzer: "ratraw"},
	}
	got := summary(diags)
	want := "defenderlint: 3 findings (errlost 2, ratraw 1)"
	if got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
}
