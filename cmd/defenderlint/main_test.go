package main

import (
	"testing"

	"github.com/defender-game/defender/internal/analyzers"
)

// TestRepositoryIsLintClean runs the full analyzer suite over the whole
// module and requires zero diagnostics — the repo must stay clean under
// its own invariant checks, so regressions fail `go test` directly rather
// than only the CI lint step.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	diags, err := Lint("../..", []string{"./..."}, analyzers.All())
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("repository has %d defenderlint findings; fix them or annotate with // lint:invariant where justified", len(diags))
	}
}

// TestFilterAnalyzers keeps the -only flag honest.
func TestFilterAnalyzers(t *testing.T) {
	suite := analyzers.All()
	got := filterAnalyzers(suite, "floateq, ratalias")
	if len(got) != 2 {
		t.Fatalf("filterAnalyzers returned %d analyzers, want 2", len(got))
	}
	names := map[string]bool{got[0].Name: true, got[1].Name: true}
	if !names["floateq"] || !names["ratalias"] {
		t.Fatalf("filterAnalyzers kept %v, want floateq and ratalias", names)
	}
	if got := filterAnalyzers(suite, "nosuch"); len(got) != 0 {
		t.Fatalf("filterAnalyzers(nosuch) returned %d analyzers, want 0", len(got))
	}
}
