// Command benchdiff is the perf-regression gate over the bench records of
// cmd/experiments (internal/benchrec). It loads two reports — either two
// explicit files or the two most recent entries of an append-only history
// directory — renders a markdown delta table over per-table wall time,
// cell throughput, and cell latency percentiles, and exits nonzero when
// any table slowed down beyond the noise tolerance.
//
// Usage:
//
//	benchdiff [-tolerance 0.25] [-min-samples 1] [-min-wall-ms 0] OLD.json NEW.json
//	benchdiff [flags] -history bench/history
//
// Exit codes: 0 no regression, 1 regression beyond tolerance, 2 usage or
// load error (malformed or old-schema records are refused, not guessed
// at). The verdict rules — what gates, what is only reported, and the
// min-sample and noise-floor guards — are documented on diffReports and
// in OBSERVABILITY.md "Tracking performance over time".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/defender-game/defender/internal/benchrec"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs the gate and returns the process exit code.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		opt     options
		history = fs.String("history", "", "diff the two most recent records of this directory instead of two explicit files")
	)
	fs.Float64Var(&opt.tolerance, "tolerance", 0.25, "fractional slowdown allowed before a table regresses (0.25 = 25%)")
	fs.IntVar(&opt.minSamples, "min-samples", 1, "tables with fewer -bench-repeat samples on either side are reported, not gated")
	fs.Float64Var(&opt.minWallMS, "min-wall-ms", 0, "tables with baseline wall time below this are reported, not gated")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if opt.tolerance < 0 {
		fmt.Fprintln(stderr, "benchdiff: -tolerance must be >= 0")
		return 2
	}

	var basePath, latestPath string
	switch {
	case *history != "":
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "benchdiff: -history and explicit report files are mutually exclusive")
			return 2
		}
		var err error
		basePath, latestPath, err = benchrec.LatestPair(*history)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
	case fs.NArg() == 2:
		basePath, latestPath = fs.Arg(0), fs.Arg(1)
	default:
		fmt.Fprintln(stderr, "benchdiff: want two report files (OLD NEW) or -history DIR")
		return 2
	}

	base, err := benchrec.Load(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	latest, err := benchrec.Load(latestPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	res := diffReports(basePath, base, latestPath, latest, opt)
	fmt.Fprint(stdout, res.markdown(opt))
	if res.regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d table(s) regressed beyond the ±%.0f%% tolerance\n", res.regressions, 100*opt.tolerance)
		return 1
	}
	return 0
}
