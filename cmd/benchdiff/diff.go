package main

import (
	"fmt"
	"strings"

	"github.com/defender-game/defender/internal/benchrec"
)

// options tunes the regression verdict.
type options struct {
	// tolerance is the fractional slowdown allowed before a table is a
	// regression: 0.25 lets wall time grow (and throughput shrink) by a
	// quarter before the gate fires.
	tolerance float64
	// minSamples is the min-sample guard: a table aggregated from fewer
	// passes on either side is reported but never gated — one-shot
	// timings are too noisy to fail a build over.
	minSamples int
	// minWallMS is an absolute noise floor: tables whose baseline wall
	// time is below it are reported but not gated (sub-millisecond quick
	// cells jitter by integer factors on loaded CI hosts).
	minWallMS float64
}

// tableDelta is one table's comparison across the two reports.
type tableDelta struct {
	id string
	// onlyIn is "" when the table exists in both reports, otherwise the
	// side ("baseline"/"latest") that has it. One-sided tables are noted,
	// never gated: a renamed or new experiment is not a slowdown.
	onlyIn   string
	old, cur benchrec.Table
	// skipped carries the guard that excluded this table from gating
	// ("" when gated).
	skipped string
	// reasons lists the metrics that regressed beyond tolerance; the
	// table is a regression iff it is non-empty.
	reasons []string
}

func (d tableDelta) regressed() bool { return len(d.reasons) > 0 }

// diffResult is the full comparison: per-table deltas plus the headline
// totals.
type diffResult struct {
	baseName, latestName string
	base, latest         *benchrec.Report
	tables               []tableDelta
	regressions          int
}

// frac returns the fractional change (new-old)/old, or 0 when the
// baseline is zero (delta of a structurally absent measurement; bench
// metrics are non-negative, so <= is the exact zero test).
func frac(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return (new - old) / old
}

// diffReports compares two bench records table by table. Gating looks at
// wall time for every two-sided table and at cell throughput for tables
// with cell timing on both sides; the p50/p95/p99 deltas are rendered for
// diagnosis but never gate (bucket-resolution percentiles of quick cells
// are too coarse to fail a build over).
func diffReports(baseName string, base *benchrec.Report, latestName string, latest *benchrec.Report, opt options) diffResult {
	res := diffResult{baseName: baseName, latestName: latestName, base: base, latest: latest}

	latestByID := make(map[string]benchrec.Table, len(latest.Tables))
	for _, t := range latest.Tables {
		latestByID[t.ID] = t
	}
	seen := make(map[string]bool, len(base.Tables))
	for _, old := range base.Tables {
		seen[old.ID] = true
		cur, ok := latestByID[old.ID]
		if !ok {
			res.tables = append(res.tables, tableDelta{id: old.ID, onlyIn: "baseline", old: old})
			continue
		}
		d := tableDelta{id: old.ID, old: old, cur: cur}
		switch {
		case old.Samples < opt.minSamples || cur.Samples < opt.minSamples:
			d.skipped = fmt.Sprintf("samples %d/%d < %d", old.Samples, cur.Samples, opt.minSamples)
		case old.WallMS < opt.minWallMS:
			d.skipped = fmt.Sprintf("baseline wall %.3f ms below %.3f ms floor", old.WallMS, opt.minWallMS)
		default:
			if old.WallMS > 0 && cur.WallMS > old.WallMS*(1+opt.tolerance) {
				d.reasons = append(d.reasons, fmt.Sprintf("wall %+.0f%%", 100*frac(old.WallMS, cur.WallMS)))
			}
			// Throughput gates only when both sides measured it:
			// cell_timing:false tables report structural zeros there,
			// which would otherwise read as a 100% regression.
			if old.CellTiming && cur.CellTiming && old.CellsPerSec > 0 &&
				cur.CellsPerSec < old.CellsPerSec*(1-opt.tolerance) {
				d.reasons = append(d.reasons, fmt.Sprintf("cells/s %+.0f%%", 100*frac(old.CellsPerSec, cur.CellsPerSec)))
			}
		}
		if d.regressed() {
			res.regressions++
		}
		res.tables = append(res.tables, d)
	}
	for _, cur := range latest.Tables {
		if !seen[cur.ID] {
			res.tables = append(res.tables, tableDelta{id: cur.ID, onlyIn: "latest", cur: cur})
		}
	}
	return res
}

// pair renders "old→new (+x%)" for one metric of a two-sided table.
func pair(old, new float64, format string) string {
	if old <= 0 && new <= 0 {
		return "—"
	}
	return fmt.Sprintf(format+"→"+format+" (%+.1f%%)", old, new, 100*frac(old, new))
}

// describe is the one-line provenance of a report in the markdown header.
func describe(name string, r *benchrec.Report) string {
	sha := r.GitSHA
	if sha == "" {
		sha = "no-git"
	} else if len(sha) > 12 {
		sha = sha[:12]
	}
	mode := "full"
	if r.Quick {
		mode = "quick"
	}
	return fmt.Sprintf("`%s` — %s @ %s, %s suite, %d pass(es), %s/%s on %s",
		name, sha, r.Timestamp.Format("2006-01-02T15:04:05Z"), mode, r.BenchRepeat, r.GOOS, r.GOARCH, r.Hostname)
}

// markdown renders the delta table the CI perf gate prints.
func (res diffResult) markdown(opt options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# benchdiff — %d table(s), %d regression(s)\n\n", len(res.tables), res.regressions)
	fmt.Fprintf(&sb, "- baseline: %s\n", describe(res.baseName, res.base))
	fmt.Fprintf(&sb, "- latest:   %s\n", describe(res.latestName, res.latest))
	fmt.Fprintf(&sb, "- gate: tolerance ±%.0f%%, min samples %d, min wall %.3f ms\n",
		100*opt.tolerance, opt.minSamples, opt.minWallMS)
	if res.base.Hostname != res.latest.Hostname || res.base.GOOS != res.latest.GOOS || res.base.GOARCH != res.latest.GOARCH {
		sb.WriteString("- **warning:** reports come from different hosts; deltas compare hardware, not code\n")
	}
	sb.WriteString("\n| table | wall ms | cells/s | cell p50 ms | cell p95 ms | cell p99 ms | verdict |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	for _, d := range res.tables {
		var wall, cps, p50, p95, p99, verdict string
		switch {
		case d.onlyIn == "baseline":
			wall, cps, p50, p95, p99 = fmt.Sprintf("%.3f→·", d.old.WallMS), "·", "·", "·", "·"
			verdict = "only in baseline (not gated)"
		case d.onlyIn == "latest":
			wall, cps, p50, p95, p99 = fmt.Sprintf("·→%.3f", d.cur.WallMS), "·", "·", "·", "·"
			verdict = "only in latest (not gated)"
		default:
			wall = pair(d.old.WallMS, d.cur.WallMS, "%.3f")
			if d.old.CellTiming && d.cur.CellTiming {
				cps = pair(d.old.CellsPerSec, d.cur.CellsPerSec, "%.0f")
				p50 = pair(d.old.CellP50MS, d.cur.CellP50MS, "%.3f")
				p95 = pair(d.old.CellP95MS, d.cur.CellP95MS, "%.3f")
				p99 = pair(d.old.CellP99MS, d.cur.CellP99MS, "%.3f")
			} else {
				cps, p50, p95, p99 = "no cell timing", "—", "—", "—"
			}
			switch {
			case d.skipped != "":
				verdict = "skipped: " + d.skipped
			case d.regressed():
				verdict = "**REGRESSION** (" + strings.Join(d.reasons, ", ") + ")"
			default:
				verdict = "ok"
			}
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s | %s |\n", d.id, wall, cps, p50, p95, p99, verdict)
	}
	fmt.Fprintf(&sb, "\ntotal wall: %s ms (informational; includes all repeat passes)\n",
		pair(res.base.TotalWallMS, res.latest.TotalWallMS, "%.1f"))
	return sb.String()
}
