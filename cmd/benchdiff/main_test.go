package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMainExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := fixtureReport()
	basePath := filepath.Join(dir, "base.json")
	if err := base.Save(basePath); err != nil {
		t.Fatal(err)
	}
	identical := filepath.Join(dir, "identical.json")
	if err := fixtureReport().Save(identical); err != nil {
		t.Fatal(err)
	}
	slow := fixtureReport()
	slow.Tables[1].WallMS *= 5
	slow.Tables[1].CellsPerSec /= 5
	slowPath := filepath.Join(dir, "slow.json")
	if err := slow.Save(slowPath); err != nil {
		t.Fatal(err)
	}
	malformed := filepath.Join(dir, "malformed.json")
	if err := os.WriteFile(malformed, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	oldSchema := filepath.Join(dir, "old.json")
	if err := os.WriteFile(oldSchema, []byte(`{"suite":"experiments","tables":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		args     []string
		wantExit int
		wantErr  string
	}{
		{"identical reports pass", []string{basePath, identical}, 0, ""},
		{"5x slowdown fails", []string{basePath, slowPath}, 1, "regressed beyond"},
		{"coarse tolerance forgives", []string{"-tolerance", "10", basePath, slowPath}, 0, ""},
		{"malformed report refused", []string{basePath, malformed}, 2, "not a bench record"},
		{"old schema refused", []string{basePath, oldSchema}, 2, "no schema_version"},
		{"missing file refused", []string{basePath, filepath.Join(dir, "absent.json")}, 2, ""},
		{"one positional arg is usage error", []string{basePath}, 2, "want two report files"},
		{"no args is usage error", nil, 2, "want two report files"},
		{"negative tolerance refused", []string{"-tolerance", "-1", basePath, identical}, 2, "must be >= 0"},
		{"history plus files refused", []string{"-history", dir, basePath, identical}, 2, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := realMain(tc.args, &stdout, &stderr); got != tc.wantExit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, tc.wantExit, stdout.String(), stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

func TestMainHistoryMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "history")

	var stdout, stderr bytes.Buffer
	if got := realMain([]string{"-history", dir}, &stdout, &stderr); got != 2 {
		t.Fatalf("empty history dir: exit %d, want 2 (%s)", got, stderr.String())
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	older := fixtureReport()
	older.Timestamp = time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	if err := older.Save(filepath.Join(dir, "20260805T090000Z-aaaa.json")); err != nil {
		t.Fatal(err)
	}
	newer := fixtureReport()
	newer.Timestamp = time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC)
	newer.Tables[0].WallMS *= 5
	if err := newer.Save(filepath.Join(dir, "20260805T100000Z-bbbb.json")); err != nil {
		t.Fatal(err)
	}

	stdout.Reset()
	stderr.Reset()
	if got := realMain([]string{"-history", dir}, &stdout, &stderr); got != 1 {
		t.Fatalf("history diff with slowdown: exit %d, want 1\n%s%s", got, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSION") {
		t.Error("markdown output missing the regression verdict")
	}
}
