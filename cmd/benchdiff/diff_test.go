package main

import (
	"strings"
	"testing"
	"time"

	"github.com/defender-game/defender/internal/benchrec"
)

// fixtureReport builds a plausible multi-table record: two runner-backed
// tables and one cell_timing:false table, three samples each.
func fixtureReport() *benchrec.Report {
	return &benchrec.Report{
		SchemaVersion: benchrec.SchemaVersion,
		Suite:         "experiments",
		Quick:         true,
		Seed:          1,
		GitSHA:        "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
		Timestamp:     time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC),
		Hostname:      "ci-host",
		GOOS:          "linux",
		GOARCH:        "amd64",
		BenchRepeat:   3,
		TotalWallMS:   40,
		Tables: []benchrec.Table{
			{ID: "E1", Rows: 39, Cells: 39, CellTiming: true, Samples: 3,
				WallMS: 10, CellsPerSec: 3900, CellP50MS: 0.1, CellP95MS: 0.2, CellP99MS: 0.3, CellMaxMS: 0.5},
			{ID: "E2", Rows: 26, Cells: 6, CellTiming: true, Samples: 3,
				WallMS: 20, CellsPerSec: 300, CellP50MS: 2, CellP95MS: 4, CellP99MS: 5, CellMaxMS: 6},
			{ID: "E3", Rows: 18, Cells: 0, CellTiming: false, Samples: 3, WallMS: 8},
		},
	}
}

func deltaByID(res diffResult, id string) (tableDelta, bool) {
	for _, d := range res.tables {
		if d.id == id {
			return d, true
		}
	}
	return tableDelta{}, false
}

func TestDiffIdenticalReportsIsClean(t *testing.T) {
	res := diffReports("a.json", fixtureReport(), "b.json", fixtureReport(), options{tolerance: 0.25, minSamples: 1})
	if res.regressions != 0 {
		t.Fatalf("identical reports produced %d regressions: %s", res.regressions, res.markdown(options{}))
	}
	for _, d := range res.tables {
		if d.skipped != "" || d.onlyIn != "" {
			t.Errorf("%s unexpectedly not gated: %+v", d.id, d)
		}
	}
}

// The acceptance fixture: inflating one table's wall time 5x must fire
// the gate.
func TestDiffFlagsFiveFoldSlowdown(t *testing.T) {
	slow := fixtureReport()
	slow.Tables[1].WallMS *= 5
	slow.Tables[1].CellsPerSec /= 5
	res := diffReports("a.json", fixtureReport(), "b.json", slow, options{tolerance: 0.25, minSamples: 1})
	if res.regressions != 1 {
		t.Fatalf("regressions = %d, want exactly the inflated table", res.regressions)
	}
	d, _ := deltaByID(res, "E2")
	if !d.regressed() {
		t.Fatal("E2 not flagged")
	}
	joined := strings.Join(d.reasons, "; ")
	if !strings.Contains(joined, "wall") || !strings.Contains(joined, "cells/s") {
		t.Errorf("reasons %q should name both wall and throughput", joined)
	}
}

// Tolerance boundary: growth of exactly (1+tol) is allowed; any more is a
// regression.
func TestDiffToleranceBoundary(t *testing.T) {
	opt := options{tolerance: 0.25, minSamples: 1}
	at := fixtureReport()
	at.Tables[0].WallMS = 12.5 // exactly +25% over 10
	if res := diffReports("a", fixtureReport(), "b", at, opt); res.regressions != 0 {
		t.Errorf("exact-boundary growth must pass: %s", res.markdown(opt))
	}
	over := fixtureReport()
	over.Tables[0].WallMS = 12.51
	if res := diffReports("a", fixtureReport(), "b", over, opt); res.regressions != 1 {
		t.Error("just-over-boundary growth must regress")
	}
}

func TestDiffThroughputDropAloneRegresses(t *testing.T) {
	slow := fixtureReport()
	// Same wall, collapsed throughput (e.g. the table gained cells but
	// each got much slower).
	slow.Tables[0].CellsPerSec = 1000
	res := diffReports("a", fixtureReport(), "b", slow, options{tolerance: 0.25, minSamples: 1})
	d, _ := deltaByID(res, "E1")
	if !d.regressed() || !strings.Contains(strings.Join(d.reasons, ";"), "cells/s") {
		t.Errorf("throughput collapse not flagged: %+v", d)
	}
}

// cell_timing:false tables gate on wall only; their structurally zero
// throughput must never read as a 100% regression.
func TestDiffZeroCellTables(t *testing.T) {
	res := diffReports("a", fixtureReport(), "b", fixtureReport(), options{tolerance: 0.25, minSamples: 1})
	d, ok := deltaByID(res, "E3")
	if !ok || d.regressed() || d.skipped != "" {
		t.Fatalf("identical E3 must gate clean on wall: %+v", d)
	}
	slow := fixtureReport()
	slow.Tables[2].WallMS *= 5
	res = diffReports("a", fixtureReport(), "b", slow, options{tolerance: 0.25, minSamples: 1})
	d, _ = deltaByID(res, "E3")
	if !d.regressed() {
		t.Error("a 5x wall slowdown of a no-cell-timing table must still regress")
	}
	if strings.Contains(strings.Join(d.reasons, ";"), "cells/s") {
		t.Errorf("throughput must not be compared for cell_timing:false tables: %v", d.reasons)
	}
	if !strings.Contains(res.markdown(options{}), "no cell timing") {
		t.Error("markdown should mark the timing-less table")
	}
}

// Mixed cell_timing (a table moved onto the runner between the two runs):
// throughput is incomparable, wall still gates.
func TestDiffMixedCellTimingSkipsThroughput(t *testing.T) {
	migrated := fixtureReport()
	migrated.Tables[2].Cells = 9
	migrated.Tables[2].CellTiming = true
	migrated.Tables[2].CellsPerSec = 1200
	res := diffReports("a", fixtureReport(), "b", migrated, options{tolerance: 0.25, minSamples: 1})
	d, _ := deltaByID(res, "E3")
	if d.regressed() {
		t.Errorf("gaining cell timing must not regress: %+v", d)
	}
}

// A table present in only one report is reported but never gated.
func TestDiffOneSidedTables(t *testing.T) {
	latest := fixtureReport()
	latest.Tables = latest.Tables[:2] // E3 dropped
	latest.Tables = append(latest.Tables, benchrec.Table{ID: "E17", Rows: 1, Cells: 1, CellTiming: true, Samples: 3, WallMS: 1, CellsPerSec: 1000})
	res := diffReports("a", fixtureReport(), "b", latest, options{tolerance: 0.25, minSamples: 1})
	if res.regressions != 0 {
		t.Fatalf("one-sided tables must not regress: %s", res.markdown(options{}))
	}
	if d, ok := deltaByID(res, "E3"); !ok || d.onlyIn != "baseline" {
		t.Errorf("dropped table not reported as baseline-only: %+v", d)
	}
	if d, ok := deltaByID(res, "E17"); !ok || d.onlyIn != "latest" {
		t.Errorf("new table not reported as latest-only: %+v", d)
	}
	md := res.markdown(options{})
	if !strings.Contains(md, "only in baseline") || !strings.Contains(md, "only in latest") {
		t.Error("markdown should note one-sided tables")
	}
}

// The min-sample guard: under-sampled tables never gate, even when they
// look five times slower.
func TestDiffMinSampleGuard(t *testing.T) {
	single := fixtureReport()
	for i := range single.Tables {
		single.Tables[i].Samples = 1
	}
	slow := fixtureReport()
	for i := range slow.Tables {
		slow.Tables[i].Samples = 1
		slow.Tables[i].WallMS *= 5
	}
	res := diffReports("a", single, "b", slow, options{tolerance: 0.25, minSamples: 3})
	if res.regressions != 0 {
		t.Fatalf("under-sampled tables must be guarded: %s", res.markdown(options{}))
	}
	for _, d := range res.tables {
		if d.skipped == "" {
			t.Errorf("%s not marked skipped", d.id)
		}
	}
}

// The absolute noise floor: sub-floor baseline tables are informational.
func TestDiffMinWallFloor(t *testing.T) {
	slow := fixtureReport()
	slow.Tables[0].WallMS *= 5
	res := diffReports("a", fixtureReport(), "b", slow, options{tolerance: 0.25, minSamples: 1, minWallMS: 15})
	d, _ := deltaByID(res, "E1")
	if d.regressed() || !strings.Contains(d.skipped, "floor") {
		t.Errorf("E1 (baseline 10ms < 15ms floor) must be skipped: %+v", d)
	}
	// E2's baseline (20ms) clears the floor, so its slowdown still gates.
	if d2, _ := deltaByID(res, "E2"); d2.skipped != "" {
		t.Errorf("E2 must stay gated above the floor: %+v", d2)
	}
}

func TestDiffMarkdownHostMismatchWarning(t *testing.T) {
	other := fixtureReport()
	other.Hostname = "laptop"
	res := diffReports("a", fixtureReport(), "b", other, options{tolerance: 0.25, minSamples: 1})
	if !strings.Contains(res.markdown(options{}), "different hosts") {
		t.Error("cross-host diff must carry a hardware warning")
	}
}

func TestDiffMarkdownShape(t *testing.T) {
	opt := options{tolerance: 0.25, minSamples: 1}
	slow := fixtureReport()
	slow.Tables[1].WallMS *= 5
	md := diffReports("base.json", fixtureReport(), "new.json", slow, opt).markdown(opt)
	for _, want := range []string{
		"# benchdiff",
		"| table | wall ms | cells/s |",
		"**REGRESSION**",
		"| E1 |",
		"aaaaaaaaaaaa @ 2026-08-05",
		"tolerance ±25%",
		"total wall:",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
