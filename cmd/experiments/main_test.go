package main

import "testing"

func TestRunSelectedQuick(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E1,E7"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownSelection(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Error("unknown experiment id must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestRunCaseInsensitiveSelection(t *testing.T) {
	if err := run([]string{"-quick", "-only", "e9"}); err != nil {
		t.Fatalf("lower-case id: %v", err)
	}
}
