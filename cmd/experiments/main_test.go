package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSelectedQuick(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E1,E7"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownSelection(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Error("unknown experiment id must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestRunCaseInsensitiveSelection(t *testing.T) {
	if err := run([]string{"-quick", "-only", "e9"}); err != nil {
		t.Fatalf("lower-case id: %v", err)
	}
}

func TestRunWorkersFlag(t *testing.T) {
	if err := run([]string{"-quick", "-workers", "4", "-only", "E1"}); err != nil {
		t.Fatalf("run with workers: %v", err)
	}
}

func TestRunBenchOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_experiments.json")
	if err := run([]string{"-quick", "-workers", "2", "-only", "E1,E10", "-bench-out", path}); err != nil {
		t.Fatalf("run with bench-out: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bench file not written: %v", err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench file is not valid JSON: %v", err)
	}
	if report.Suite != "experiments" || !report.Quick || report.Workers != 2 {
		t.Errorf("report header wrong: %+v", report)
	}
	if len(report.Tables) != 2 || report.TotalWallMS <= 0 {
		t.Fatalf("want 2 table entries and positive wall time, got %+v", report)
	}
	for _, tab := range report.Tables {
		if tab.WallMS <= 0 {
			t.Errorf("%s: wall_ms = %v, want > 0", tab.ID, tab.WallMS)
		}
		if tab.Cells <= 0 || tab.CellsPerSec <= 0 {
			t.Errorf("%s: cells=%d cells_per_sec=%v, want > 0 for runner-backed tables", tab.ID, tab.Cells, tab.CellsPerSec)
		}
	}
}

func TestRunBenchOutUnwritablePath(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E1", "-bench-out", "/nonexistent-dir/bench.json"}); err == nil {
		t.Error("unwritable bench-out path must fail")
	}
}
