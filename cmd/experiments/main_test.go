package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/defender-game/defender/internal/benchrec"
	"github.com/defender-game/defender/internal/obs"
)

func TestRunSelectedQuick(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E1,E7"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownSelection(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Error("unknown experiment id must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestRunCaseInsensitiveSelection(t *testing.T) {
	if err := run([]string{"-quick", "-only", "e9"}); err != nil {
		t.Fatalf("lower-case id: %v", err)
	}
}

func TestRunWorkersFlag(t *testing.T) {
	if err := run([]string{"-quick", "-workers", "4", "-only", "E1"}); err != nil {
		t.Fatalf("run with workers: %v", err)
	}
}

func TestRunBenchOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_experiments.json")
	if err := run([]string{"-quick", "-workers", "2", "-only", "E1,E10", "-bench-out", path}); err != nil {
		t.Fatalf("run with bench-out: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bench file not written: %v", err)
	}
	var report benchrec.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench file is not valid JSON: %v", err)
	}
	if report.Suite != "experiments" || !report.Quick || report.WorkersRequested != 2 {
		t.Errorf("report header wrong: %+v", report)
	}
	if report.WorkersEffective != 2 {
		t.Errorf("workers_effective = %d, want 2", report.WorkersEffective)
	}
	if len(report.Tables) != 2 || report.TotalWallMS <= 0 {
		t.Fatalf("want 2 table entries and positive wall time, got %+v", report)
	}
	for _, tab := range report.Tables {
		if tab.WallMS <= 0 {
			t.Errorf("%s: wall_ms = %v, want > 0", tab.ID, tab.WallMS)
		}
		if tab.Cells <= 0 || tab.CellsPerSec <= 0 {
			t.Errorf("%s: cells=%d cells_per_sec=%v, want > 0 for runner-backed tables", tab.ID, tab.Cells, tab.CellsPerSec)
		}
	}
}

func TestRunBenchOutUnwritablePath(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E1", "-bench-out", "/nonexistent-dir/bench.json"}); err == nil {
		t.Error("unwritable bench-out path must fail")
	}
}

// The workers/GOMAXPROCS fix: a defaulted -workers run must report the
// real pool size (GOMAXPROCS), not the raw flag value 0, and gomaxprocs
// must always be the runtime value regardless of -workers.
func TestRunBenchOutRecordsEffectiveWorkers(t *testing.T) {
	cases := []struct {
		name          string
		workersFlag   []string
		wantRequested int
		wantEffective int
	}{
		{"defaulted", nil, 0, runtime.GOMAXPROCS(0)},
		{"explicit", []string{"-workers", "3"}, 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bench.json")
			args := append([]string{"-quick", "-only", "E1", "-bench-out", path}, tc.workersFlag...)
			if err := run(args); err != nil {
				t.Fatalf("run: %v", err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var report benchrec.Report
			if err := json.Unmarshal(data, &report); err != nil {
				t.Fatal(err)
			}
			if report.WorkersRequested != tc.wantRequested {
				t.Errorf("workers_requested = %d, want %d", report.WorkersRequested, tc.wantRequested)
			}
			if report.WorkersEffective != tc.wantEffective {
				t.Errorf("workers_effective = %d, want %d", report.WorkersEffective, tc.wantEffective)
			}
			if report.GoMaxProcs != runtime.GOMAXPROCS(0) {
				t.Errorf("gomaxprocs = %d, want %d", report.GoMaxProcs, runtime.GOMAXPROCS(0))
			}
		})
	}
}

// The acceptance criterion of the observability layer: a -quick -bench-out
// run emits a metrics section with cache hit/miss counts and at least one
// populated latency histogram.
func TestRunBenchOutMetricsSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-only", "E1,E10", "-bench-out", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchrec.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	m := report.Metrics
	if len(m.Counters) == 0 || len(m.Histograms) == 0 {
		t.Fatalf("metrics section empty: %+v", m)
	}
	// Cache lookups happened: hits + misses must cover at least one kind.
	var lookups uint64
	for _, kind := range []string{"matching", "cover", "tuples", "value"} {
		lookups += m.Counters["experiments.cache."+kind+".hits"]
		lookups += m.Counters["experiments.cache."+kind+".misses"]
	}
	if lookups == 0 {
		t.Error("metrics section has no cache hit/miss counts")
	}
	h, ok := m.Histograms["experiments.cell_seconds"]
	if !ok || h.Count == 0 {
		t.Errorf("experiments.cell_seconds histogram missing or empty: %+v", h)
	}
	if h.P50 < 0 || h.P95 < h.P50 || h.P99 < h.P95 {
		t.Errorf("histogram percentiles not monotone: %+v", h)
	}
}

func TestRunTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-quick", "-only", "E10", "-trace-out", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("trace file is empty; every table run emits an experiments.table span")
	}
	// Assert on the per-table span rather than a solver-level one: solver
	// spans can be skipped when the process-wide structure cache is already
	// warm from earlier tests, but the table span always fires.
	sawTable := false
	for _, line := range lines {
		var ev struct {
			Name  string            `json:"name"`
			DurNS int64             `json:"dur_ns"`
			Attrs map[string]string `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%q", err, line)
		}
		if ev.Name == "experiments.table" {
			sawTable = true
			if ev.Attrs["id"] != "E10" {
				t.Errorf("experiments.table span id = %q, want E10", ev.Attrs["id"])
			}
			if ev.DurNS <= 0 {
				t.Errorf("experiments.table span dur_ns = %d, want > 0", ev.DurNS)
			}
		}
	}
	if !sawTable {
		t.Error("no experiments.table span in the trace")
	}
}

func TestRunDebugAddrServesMetrics(t *testing.T) {
	// The suite exits quickly, but the debug server stays up for the
	// process lifetime — probe it after run returns.
	if err := run([]string{"-quick", "-only", "E1", "-debug-addr", "127.0.0.1:0"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// run prints the resolved address to stderr; easier: start another
	// server directly through the same helper the flag uses.
	addr, err := obs.StartDebugServer("127.0.0.1:0", obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics is not a snapshot: %v", err)
	}
	if len(snap.Counters) == 0 {
		t.Error("/metrics snapshot has no counters after a suite run")
	}
}

// The schema acceptance criterion: a fresh -bench-out record carries the
// schema version, git SHA, timestamp and per-table p99/max, and
// round-trips through benchrec Load/Save byte-identically.
func TestRunBenchOutSchemaAndRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-only", "E1", "-bench-out", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := benchrec.Load(path)
	if err != nil {
		t.Fatalf("fresh record does not Load: %v", err)
	}
	if rep.SchemaVersion != benchrec.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", rep.SchemaVersion, benchrec.SchemaVersion)
	}
	if len(rep.GitSHA) != 40 {
		t.Errorf("git_sha = %q, want a 40-char commit (test runs inside the repo)", rep.GitSHA)
	}
	if rep.Timestamp.IsZero() {
		t.Error("timestamp missing")
	}
	if rep.GOOS != runtime.GOOS || rep.GOARCH != runtime.GOARCH || rep.Hostname == "" {
		t.Errorf("host stamp wrong: goos=%q goarch=%q hostname=%q", rep.GOOS, rep.GOARCH, rep.Hostname)
	}
	if len(rep.Tables) != 1 {
		t.Fatalf("want 1 table entry, got %d", len(rep.Tables))
	}
	e1 := rep.Tables[0]
	if !e1.CellTiming || e1.CellMaxMS <= 0 {
		t.Errorf("E1 entry must carry cell timing with a positive max: %+v", e1)
	}
	if e1.CellP95MS > e1.CellP99MS || e1.CellP99MS > e1.CellMaxMS {
		t.Errorf("tail stats not monotone: %+v", e1)
	}
	resaved, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(written) != string(resaved) {
		t.Error("-bench-out record does not round-trip byte-identically through benchrec")
	}
}

// -bench-repeat N runs each table N times and aggregates the samples.
func TestRunBenchRepeatAggregates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-only", "E1", "-bench-repeat", "3", "-bench-out", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := benchrec.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRepeat != 3 {
		t.Errorf("bench_repeat = %d, want 3", rep.BenchRepeat)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].Samples != 3 {
		t.Fatalf("want one E1 entry aggregating 3 samples, got %+v", rep.Tables)
	}
	if rep.Tables[0].WallMS <= 0 || rep.Tables[0].CellsPerSec <= 0 {
		t.Errorf("aggregated timing must stay positive: %+v", rep.Tables[0])
	}
}

func TestRunBenchRepeatInvalid(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E1", "-bench-repeat", "0"}); err == nil {
		t.Error("bench-repeat 0 must fail")
	}
}

// -bench-history appends one record per run without overwriting.
func TestRunBenchHistoryAppends(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "history")
	for i := 0; i < 2; i++ {
		if err := run([]string{"-quick", "-only", "E1", "-bench-history", dir}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	paths, err := benchrec.ListHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("history holds %d records, want 2", len(paths))
	}
	for _, p := range paths {
		if _, err := benchrec.Load(p); err != nil {
			t.Errorf("history record %s does not load: %v", p, err)
		}
	}
}

// Tables whose work happens outside the cell runner (E3 here) are marked
// cell_timing:false with structurally zero throughput — not reported as a
// measured zero, which benchdiff would read as a full regression.
func TestRunBenchOutMarksZeroCellTables(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-only", "E1,E3", "-bench-out", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := benchrec.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]benchrec.Table{}
	for _, tab := range rep.Tables {
		byID[tab.ID] = tab
	}
	e3, ok := byID["E3"]
	if !ok {
		t.Fatal("E3 entry missing")
	}
	if e3.CellTiming || e3.Cells != 0 {
		t.Errorf("E3 must be cell_timing:false with zero cells: %+v", e3)
	}
	if e3.CellsPerSec != 0 || e3.CellP99MS != 0 || e3.CellMaxMS != 0 {
		t.Errorf("E3 throughput fields must stay structurally zero: %+v", e3)
	}
	if e3.WallMS <= 0 {
		t.Errorf("E3 wall time is still measured: %+v", e3)
	}
	if e1 := byID["E1"]; !e1.CellTiming {
		t.Errorf("E1 must keep cell timing: %+v", e1)
	}
}
