// Command experiments regenerates every table of EXPERIMENTS.md: the
// empirical counterparts of the theorems of "The Power of the Defender"
// (ICDCS 2006). Each table carries a per-row self-check; the command exits
// non-zero if any check fails, making it usable as a reproduction gate.
//
// Tables execute their independent (graph, k) cells on a bounded worker
// pool (-workers, default GOMAXPROCS); output is byte-identical for any
// worker count. -bench-out writes a JSON perf baseline (per-table wall
// time, cell throughput, p50/p95 cell latency, and the full metrics
// snapshot of the instrumented solver stack) for trend tracking.
//
// Observability (see OBSERVABILITY.md): metrics are always recorded;
// -debug-addr serves live /metrics, expvar and net/http/pprof while the
// suite runs; -trace-out streams span events as JSONL for offline
// analysis.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only E2,E5] [-workers N]
//	            [-bench-out FILE] [-debug-addr HOST:PORT] [-trace-out FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/defender-game/defender/internal/experiments"
	"github.com/defender-game/defender/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// benchTable is one table's entry in the -bench-out JSON.
type benchTable struct {
	ID          string  `json:"id"`
	Rows        int     `json:"rows"`
	Cells       int     `json:"cells"`
	WallMS      float64 `json:"wall_ms"`
	CellsPerSec float64 `json:"cells_per_sec"`
	CellP50MS   float64 `json:"cell_p50_ms"`
	CellP95MS   float64 `json:"cell_p95_ms"`
}

// benchReport is the schema of BENCH_experiments.json. Parallelism is
// recorded twice on purpose: workers_requested is the raw -workers flag
// (0 = defaulted) while workers_effective is the pool size the tables
// actually ran with — previously only the raw flag was written, so a
// defaulted run was indistinguishable from a single-worker one.
type benchReport struct {
	Suite            string       `json:"suite"`
	Quick            bool         `json:"quick"`
	Seed             int64        `json:"seed"`
	WorkersRequested int          `json:"workers_requested"`
	WorkersEffective int          `json:"workers_effective"`
	GoMaxProcs       int          `json:"gomaxprocs"`
	TotalWallMS      float64      `json:"total_wall_ms"`
	Tables           []benchTable `json:"tables"`
	// Metrics is the full observability snapshot taken after the suite:
	// cache hit/miss/store counts, solver iteration counters, and latency
	// histograms (see OBSERVABILITY.md for the catalogue).
	Metrics obs.Snapshot `json:"metrics"`
}

// effectiveWorkers resolves the -workers flag the same way the runner
// does: non-positive means one worker per logical CPU.
func effectiveWorkers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "run reduced sweeps")
		seed      = fs.Int64("seed", 1, "workload seed")
		only      = fs.String("only", "", "comma-separated experiment ids (e.g. E2,E5); empty = all")
		figures   = fs.Bool("figures", false, "also render the F1/F2 plain-text figures")
		workers   = fs.Int("workers", 0, "cell worker pool size per table; 0 = GOMAXPROCS")
		benchOut  = fs.String("bench-out", "", "write a JSON perf baseline (e.g. BENCH_experiments.json)")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, expvar and pprof on this address while running (e.g. localhost:6060)")
		traceOut  = fs.String("trace-out", "", "stream span events as JSONL to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := obs.Default()
	reg.SetEnabled(true)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		reg.SetTraceWriter(f)
		defer func() {
			reg.SetTraceWriter(nil)
			f.Close()
		}()
	}
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return fmt.Errorf("debug-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s (/metrics, /debug/pprof/, /debug/vars)\n", addr)
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	reg.Gauge("experiments.workers.effective").Set(float64(effectiveWorkers(*workers)))

	selected := make(map[string]bool)
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	report := benchReport{
		Suite:            "experiments",
		Quick:            *quick,
		Seed:             *seed,
		WorkersRequested: *workers,
		WorkersEffective: effectiveWorkers(*workers),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
	}
	failures := 0
	ran := 0
	suiteStart := time.Now()
	for _, e := range experiments.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		ran++
		sp := reg.StartSpan("experiments.table")
		sp.Annotate("id", e.ID)
		tableStart := time.Now()
		table, err := e.Run(cfg)
		tableWall := time.Since(tableStart)
		sp.End()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(table.Render())
		if bad := table.Failures(); len(bad) > 0 {
			failures += len(bad)
			fmt.Fprintf(os.Stderr, "%s: %d self-check failures\n", e.ID, len(bad))
		}
		report.Tables = append(report.Tables, benchTable{
			ID:          table.ID,
			Rows:        len(table.Rows),
			Cells:       table.Stats.Cells,
			WallMS:      float64(tableWall.Microseconds()) / 1e3,
			CellsPerSec: table.Stats.CellsPerSec(),
			CellP50MS:   float64(table.Stats.CellP50.Microseconds()) / 1e3,
			CellP95MS:   float64(table.Stats.CellP95.Microseconds()) / 1e3,
		})
	}
	report.TotalWallMS = float64(time.Since(suiteStart).Microseconds()) / 1e3
	if *figures {
		for _, f := range experiments.Figures() {
			fig, err := f.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", f.ID, err)
			}
			fmt.Printf("%s — %s\n%s\n", fig.ID, fig.Title, fig.Body)
			if !fig.OK {
				failures++
				fmt.Fprintf(os.Stderr, "%s: self-check failed\n", fig.ID)
			}
		}
	}
	if ran == 0 && !*figures {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	if *benchOut != "" {
		report.Metrics = reg.Snapshot()
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("bench-out: %w", err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("bench-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote perf baseline to %s (%.1f ms total)\n", *benchOut, report.TotalWallMS)
	}
	if failures > 0 {
		return fmt.Errorf("%d self-check failures across the suite", failures)
	}
	fmt.Printf("all %d experiments passed their self-checks\n", ran)
	return nil
}
