// Command experiments regenerates every table of EXPERIMENTS.md: the
// empirical counterparts of the theorems of "The Power of the Defender"
// (ICDCS 2006). Each table carries a per-row self-check; the command exits
// non-zero if any check fails, making it usable as a reproduction gate.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only E2,E5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/defender-game/defender/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "run reduced sweeps")
		seed    = fs.Int64("seed", 1, "workload seed")
		only    = fs.String("only", "", "comma-separated experiment ids (e.g. E2,E5); empty = all")
		figures = fs.Bool("figures", false, "also render the F1/F2 plain-text figures")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	selected := make(map[string]bool)
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failures := 0
	ran := 0
	for _, r := range experiments.All() {
		if len(selected) > 0 && !selected[r.ID] {
			continue
		}
		ran++
		table, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Println(table.Render())
		if bad := table.Failures(); len(bad) > 0 {
			failures += len(bad)
			fmt.Fprintf(os.Stderr, "%s: %d self-check failures\n", r.ID, len(bad))
		}
	}
	if *figures {
		for _, f := range experiments.Figures() {
			fig, err := f.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", f.ID, err)
			}
			fmt.Printf("%s — %s\n%s\n", fig.ID, fig.Title, fig.Body)
			if !fig.OK {
				failures++
				fmt.Fprintf(os.Stderr, "%s: self-check failed\n", fig.ID)
			}
		}
	}
	if ran == 0 && !*figures {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	if failures > 0 {
		return fmt.Errorf("%d self-check failures across the suite", failures)
	}
	fmt.Printf("all %d experiments passed their self-checks\n", ran)
	return nil
}
