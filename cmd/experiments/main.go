// Command experiments regenerates every table of EXPERIMENTS.md: the
// empirical counterparts of the theorems of "The Power of the Defender"
// (ICDCS 2006). Each table carries a per-row self-check; the command exits
// non-zero if any check fails, making it usable as a reproduction gate.
//
// Tables execute their independent (graph, k) cells on a bounded worker
// pool (-workers, default GOMAXPROCS); output is byte-identical for any
// worker count. -bench-out writes a versioned JSON perf record
// (internal/benchrec: git SHA, timestamp, host environment, per-table
// wall time, cell throughput, p50/p95/p99/max cell latency, and the full
// metrics snapshot of the instrumented solver stack); -bench-repeat N
// times each table N times and aggregates with robust min/median
// statistics so single-run noise doesn't pollute the record;
// -bench-history appends the same record to an append-only directory,
// building the longitudinal baseline that cmd/benchdiff gates against.
//
// Observability (see OBSERVABILITY.md): metrics are always recorded;
// -debug-addr serves live /metrics (JSON, or Prometheus exposition via
// ?format=prometheus), expvar and net/http/pprof while the suite runs;
// -trace-out streams span events as JSONL for offline analysis.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only E2,E5] [-workers N]
//	            [-bench-out FILE] [-bench-repeat N] [-bench-history DIR]
//	            [-debug-addr HOST:PORT] [-trace-out FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/defender-game/defender/internal/benchrec"
	"github.com/defender-game/defender/internal/experiments"
	"github.com/defender-game/defender/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// effectiveWorkers resolves the -workers flag the same way the runner
// does: non-positive means one worker per logical CPU.
func effectiveWorkers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// durMS converts a duration to the report's millisecond unit with the
// microsecond resolution the schema has always used.
func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

// benchEntry maps one completed table run onto its bench-record sample.
// Tables whose work happens outside the cell runner (Stats.Cells == 0)
// are marked cell_timing:false: their throughput and percentile fields
// are structurally zero, and benchdiff skips throughput comparison.
func benchEntry(t experiments.Table, wall time.Duration) benchrec.Table {
	e := benchrec.Table{
		ID:         t.ID,
		Rows:       len(t.Rows),
		Cells:      t.Stats.Cells,
		CellTiming: t.Stats.Cells > 0,
		Samples:    1,
		WallMS:     durMS(wall),
	}
	if e.CellTiming {
		e.CellsPerSec = t.Stats.CellsPerSec()
		e.CellP50MS = durMS(t.Stats.CellP50)
		e.CellP95MS = durMS(t.Stats.CellP95)
		e.CellP99MS = durMS(t.Stats.CellP99)
		e.CellMaxMS = durMS(t.Stats.CellMax)
	}
	return e
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick        = fs.Bool("quick", false, "run reduced sweeps")
		seed         = fs.Int64("seed", 1, "workload seed")
		only         = fs.String("only", "", "comma-separated experiment ids (e.g. E2,E5); empty = all")
		figures      = fs.Bool("figures", false, "also render the F1/F2 plain-text figures")
		workers      = fs.Int("workers", 0, "cell worker pool size per table; 0 = GOMAXPROCS")
		benchOut     = fs.String("bench-out", "", "write a JSON perf record (e.g. BENCH_experiments.json)")
		benchRepeat  = fs.Int("bench-repeat", 1, "timing passes per table; samples aggregate by min wall / median percentiles")
		benchHistory = fs.String("bench-history", "", "also append the perf record to this directory (see cmd/benchdiff)")
		debugAddr    = fs.String("debug-addr", "", "serve /metrics, expvar and pprof on this address while running (e.g. localhost:6060)")
		traceOut     = fs.String("trace-out", "", "stream span events as JSONL to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchRepeat < 1 {
		return fmt.Errorf("bench-repeat: %d passes make no sense; want >= 1", *benchRepeat)
	}
	reg := obs.Default()
	reg.SetEnabled(true)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		reg.SetTraceWriter(f)
		defer func() {
			reg.SetTraceWriter(nil)
			f.Close()
		}()
	}
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return fmt.Errorf("debug-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s (/metrics, /debug/pprof/, /debug/vars)\n", addr)
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	reg.Gauge("experiments.workers.effective").Set(float64(effectiveWorkers(*workers)))

	selected := make(map[string]bool)
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	report := benchrec.Report{
		Suite:            "experiments",
		Quick:            *quick,
		Seed:             *seed,
		WorkersRequested: *workers,
		WorkersEffective: effectiveWorkers(*workers),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		BenchRepeat:      *benchRepeat,
	}
	failures := 0
	ran := 0
	suiteStart := time.Now()
	for _, e := range experiments.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		ran++
		// Pass 0 prints the table and counts self-check failures; the
		// suite is deterministic for a fixed Config, so the remaining
		// -bench-repeat passes only contribute timing samples.
		samples := make([]benchrec.Table, 0, *benchRepeat)
		for pass := 0; pass < *benchRepeat; pass++ {
			// Each table pass roots its own always-sampled trace, so
			// -trace-out output groups passes by trace_id and tracetool
			// can summarize them individually. Cell builders run solver
			// spans without a ctx (free-standing), so only the table
			// span itself carries the trace.
			ctx := obs.ContextWithTrace(context.Background(), obs.StartTrace(1.0))
			sp, _ := reg.StartSpanCtx(ctx, "experiments.table")
			sp.Annotate("id", e.ID)
			tableStart := time.Now()
			table, err := e.Run(cfg)
			tableWall := time.Since(tableStart)
			sp.End()
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			samples = append(samples, benchEntry(table, tableWall))
			if pass > 0 {
				continue
			}
			fmt.Println(table.Render())
			if bad := table.Failures(); len(bad) > 0 {
				failures += len(bad)
				fmt.Fprintf(os.Stderr, "%s: %d self-check failures\n", e.ID, len(bad))
			}
		}
		report.Tables = append(report.Tables, benchrec.Aggregate(samples))
	}
	report.TotalWallMS = durMS(time.Since(suiteStart))
	if *figures {
		for _, f := range experiments.Figures() {
			fig, err := f.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", f.ID, err)
			}
			fmt.Printf("%s — %s\n%s\n", fig.ID, fig.Title, fig.Body)
			if !fig.OK {
				failures++
				fmt.Fprintf(os.Stderr, "%s: self-check failed\n", f.ID)
			}
		}
	}
	if ran == 0 && !*figures {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	if *benchOut != "" || *benchHistory != "" {
		report.StampEnvironment("")
		report.Metrics = reg.Snapshot()
		if *benchOut != "" {
			if err := report.Save(*benchOut); err != nil {
				return fmt.Errorf("bench-out: %w", err)
			}
			fmt.Fprintf(os.Stderr, "wrote perf record to %s (%.1f ms total, %d pass(es))\n", *benchOut, report.TotalWallMS, *benchRepeat)
		}
		if *benchHistory != "" {
			path, err := benchrec.AppendHistory(*benchHistory, &report)
			if err != nil {
				return fmt.Errorf("bench-history: %w", err)
			}
			fmt.Fprintf(os.Stderr, "appended perf record to %s\n", path)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d self-check failures across the suite", failures)
	}
	fmt.Printf("all %d experiments passed their self-checks\n", ran)
	return nil
}
