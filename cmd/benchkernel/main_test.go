package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/defender-game/defender/internal/benchrec"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/defender-game/defender/internal/rat
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkAddSmall-8    	13690731	        87.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkAddSmall-8    	13738582	        85.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkAddSmall-8    	13759988	        86.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkAddBigRat-8   	 3848610	       318.3 ns/op	     128 B/op	       6 allocs/op
BenchmarkAddBigRat-8   	 3852331	       321.0 ns/op	     128 B/op	       6 allocs/op
BenchmarkAddBigRat-8   	 3901192	       316.9 ns/op	     128 B/op	       6 allocs/op
PASS
ok  	github.com/defender-game/defender/internal/rat	6.844s
pkg: github.com/defender-game/defender/internal/lp
BenchmarkSimplexPivotDense 	      92	  12937041 ns/op
BenchmarkSimplexPivotDense 	      93	  12857230 ns/op
BenchmarkSimplexPivotDense 	      90	  12990110 ns/op
PASS
ok  	github.com/defender-game/defender/internal/lp	4.210s
`

func TestParseBenchAggregates(t *testing.T) {
	rep, _, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suite != "kernel-bench" {
		t.Errorf("suite = %q", rep.Suite)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(rep.Tables))
	}
	// First-seen order is preserved and IDs are package-qualified.
	wantIDs := []string{"rat/AddSmall", "rat/AddBigRat", "lp/SimplexPivotDense"}
	for i, want := range wantIDs {
		if rep.Tables[i].ID != want {
			t.Errorf("table %d id = %q, want %q", i, rep.Tables[i].ID, want)
		}
	}
	add := rep.Tables[0]
	if add.Samples != 3 {
		t.Errorf("samples = %d, want 3", add.Samples)
	}
	if got, want := add.WallMS, 85.0/1e6; got != want {
		t.Errorf("wall_ms = %g, want min sample %g", got, want)
	}
	if !add.CellTiming || add.Cells != 1 {
		t.Errorf("cells = %d cell_timing = %v", add.Cells, add.CellTiming)
	}
	if got, want := add.CellsPerSec, 1e9/85.0; got != want {
		t.Errorf("cells_per_sec = %g, want %g", got, want)
	}
	if rep.BenchRepeat != 3 {
		t.Errorf("bench_repeat = %d, want 3", rep.BenchRepeat)
	}
	pivot := rep.Tables[2]
	if got, want := pivot.WallMS, 12857230.0/1e6; got != want {
		t.Errorf("pivot wall_ms = %g, want %g", got, want)
	}
	// The -8 name suffix is GOMAXPROCS during the run; the record must
	// carry it instead of claiming a single-worker run.
	if rep.WorkersRequested != 8 || rep.WorkersEffective != 8 {
		t.Errorf("workers = %d/%d, want 8/8 from the -8 bench suffix",
			rep.WorkersRequested, rep.WorkersEffective)
	}
}

func TestParseBenchWithoutProcsSuffix(t *testing.T) {
	rep, _, err := parseBench(strings.NewReader(
		"BenchmarkBare \t 100 \t 50.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || rep.WorkersEffective != 1 {
		t.Fatalf("tables = %d workers = %d, want 1 table, workers 1",
			len(rep.Tables), rep.WorkersEffective)
	}
}

func TestParseThreadsLadder(t *testing.T) {
	got, err := parseThreadsLadder("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parseThreadsLadder(\"1, 2,4\") = %v, %v", got, err)
	}
	if _, err := parseThreadsLadder("1,-2"); err == nil {
		t.Error("negative rung accepted")
	}
	if _, err := parseThreadsLadder(" , "); err == nil {
		t.Error("empty ladder accepted")
	}
	got, err = parseThreadsLadder("0")
	if err != nil || len(got) != 1 || got[0] < 1 {
		t.Fatalf("parseThreadsLadder(\"0\") = %v, %v, want GOMAXPROCS rung", got, err)
	}
}

// TestScalingThreadsLadderRecord runs the real pipeline at the smallest
// ladder size across threads rungs and checks the record shape: plain IDs
// for threads=1, /threads=N suffixes above, honest workers fields, and
// identical solve outputs per rung (same cells, same equilibrium line).
func TestScalingThreadsLadderRecord(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "scaling.json")
	var stdout, stderr strings.Builder
	code := realMain([]string{"-scaling", "-scaling-max-n", "1000", "-threads", "1,2", "-out", out},
		strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	rep, err := benchrec.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorkersRequested != 2 || rep.WorkersEffective != 2 {
		t.Errorf("workers = %d/%d, want 2/2 (widest rung)", rep.WorkersRequested, rep.WorkersEffective)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(rep.Tables))
	}
	if id := rep.Tables[0].ID; id != "ba_bipartite/n=1000" {
		t.Errorf("rung-1 id = %q, want plain ba_bipartite/n=1000", id)
	}
	if id := rep.Tables[1].ID; id != "ba_bipartite/n=1000/threads=2" {
		t.Errorf("rung-2 id = %q", id)
	}
	if rep.Tables[0].Threads != 1 || rep.Tables[1].Threads != 2 {
		t.Errorf("threads fields = %d, %d, want 1, 2", rep.Tables[0].Threads, rep.Tables[1].Threads)
	}
}

func TestRealMainWritesLoadableRecord(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "kernel.json")
	hist := filepath.Join(dir, "history")
	var stdout, stderr strings.Builder
	code := realMain([]string{"-out", out, "-history", hist},
		strings.NewReader(sampleOutput), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	rep, err := benchrec.Load(out)
	if err != nil {
		t.Fatalf("record does not round-trip through benchrec: %v", err)
	}
	if rep.SchemaVersion != benchrec.SchemaVersion {
		t.Errorf("schema_version = %d", rep.SchemaVersion)
	}
	if rep.Timestamp.IsZero() {
		t.Error("timestamp not stamped")
	}
	entries, err := os.ReadDir(hist)
	if err != nil || len(entries) != 1 {
		t.Fatalf("history entries = %v, err = %v", entries, err)
	}
	if _, err := benchrec.Load(filepath.Join(hist, entries[0].Name())); err != nil {
		t.Errorf("history record invalid: %v", err)
	}
}

func TestRealMainRejectsEmptyInput(t *testing.T) {
	var stdout, stderr strings.Builder
	code := realMain(nil, strings.NewReader("no benchmarks here\n"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
}

func TestRealMainRejectsPositionalArgs(t *testing.T) {
	var stdout, stderr strings.Builder
	code := realMain([]string{"extra.json"}, strings.NewReader(""), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
