// Command benchkernel converts `go test -bench` output into the
// versioned bench-record schema of internal/benchrec, so the kernel
// micro-benchmarks (internal/rat, internal/lp, internal/core,
// internal/game) flow through the same cmd/benchdiff perf gate as the
// experiment tables.
//
// Usage:
//
//	go test -run='^$' -bench=. -count=3 ./internal/rat ./internal/lp |
//	    benchkernel -out BENCH_kernel.json -history bench/history
//
// Each benchmark becomes one table whose ID is "<package>/<Benchmark
// name>"; its wall time is the *minimum* ns/op across -count repetitions
// (the least-interfered-with run, matching internal/benchrec.Aggregate)
// and its throughput is the matching ops/sec, so benchdiff's wall and
// cells/sec gates both apply. Samples carries the repetition count, which
// lets benchdiff's -min-samples guard reject one-shot noise.
//
// With -scaling the command instead drives the sparse-core pipeline
// itself across the 10^3 → 10^6-vertex ladder (generate, solve, verify a
// k-matching NE per decade) and emits the curve as one table per size;
// see scaling.go and SCALING.md.
//
// Exit codes: 0 ok, 1 no benchmark lines found, 2 usage or write error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"github.com/defender-game/defender/internal/benchrec"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchkernel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("out", "", "write the bench record to this file")
		history = fs.String("history", "", "also append the record to this history directory (see bench/history)")

		scaling        = fs.Bool("scaling", false, "run the sparse-core scaling ladder instead of parsing bench output (see SCALING.md)")
		scalingMaxN    = fs.Int("scaling-max-n", 1_000_000, "largest ladder size; decades 10^3..maxN run")
		scalingAttach  = fs.Int("scaling-attach", 3, "preferential-attachment edges per new vertex")
		scalingK       = fs.Int("scaling-k", 4, "defender tuple size k")
		scalingNu      = fs.Int("scaling-nu", 10, "number of attackers ν")
		scalingSeed    = fs.Int64("scaling-seed", 1, "generator seed (each repetition re-solves the same instance)")
		scalingRepeat  = fs.Int("scaling-repeat", 1, "timing repetitions per size; WallMS keeps the minimum")
		scalingThreads = fs.String("threads", "1", "comma-separated solver thread ladder for -scaling, e.g. 1,2,4; 0 means GOMAXPROCS")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "benchkernel: reads benchmark output on stdin; no positional arguments")
		return 2
	}
	if *scaling {
		threads, err := parseThreadsLadder(*scalingThreads)
		if err != nil {
			fmt.Fprintln(stderr, "benchkernel:", err)
			return 2
		}
		return runScaling(scalingConfig{
			maxN:    *scalingMaxN,
			attach:  *scalingAttach,
			k:       *scalingK,
			nu:      *scalingNu,
			seed:    *scalingSeed,
			repeat:  *scalingRepeat,
			threads: threads,
		}, *out, *history, stdout, stderr)
	}

	report, lines, err := parseBench(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchkernel:", err)
		return 2
	}
	if len(report.Tables) == 0 {
		fmt.Fprintf(stderr, "benchkernel: no benchmark result lines in %d lines of input\n", lines)
		return 1
	}
	report.StampEnvironment("")

	if *out != "" {
		if err := report.Save(*out); err != nil {
			fmt.Fprintln(stderr, "benchkernel:", err)
			return 2
		}
	}
	if *history != "" {
		p, err := benchrec.AppendHistory(*history, report)
		if err != nil {
			fmt.Fprintln(stderr, "benchkernel:", err)
			return 2
		}
		fmt.Fprintf(stdout, "appended %s\n", p)
	}
	fmt.Fprintf(stdout, "%d kernel benchmark(s), %d sample(s) max\n", len(report.Tables), report.BenchRepeat)
	return 0
}

// parseThreadsLadder parses the -threads flag: a comma-separated list of
// solver thread budgets, each a non-negative integer (0 = GOMAXPROCS,
// resolved by internal/par at run time).
func parseThreadsLadder(s string) ([]int, error) {
	var ladder []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		t, err := strconv.Atoi(f)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("-threads %q: rung %q is not a non-negative integer", s, f)
		}
		if t == 0 {
			t = runtime.GOMAXPROCS(0)
		}
		ladder = append(ladder, t)
	}
	if len(ladder) == 0 {
		return nil, fmt.Errorf("-threads %q leaves no rungs to run", s)
	}
	return ladder, nil
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkAddSmall-8   12345678   95.2 ns/op   0 B/op   0 allocs/op
//
// The -<procs> suffix (GOMAXPROCS during the run) and the memory columns
// are optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([0-9.]+) ns/op`)

// pkgLine announces the package the following benchmarks belong to.
var pkgLine = regexp.MustCompile(`^pkg:\s+(\S+)`)

// sample accumulates one benchmark's repetitions.
type sample struct {
	minNS   float64
	samples int
	order   int // first-seen order, to keep the run's table order stable
}

// parseBench reads benchmark output and folds it into a bench record.
func parseBench(r io.Reader) (*benchrec.Report, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	byID := make(map[string]*sample)
	pkg := "kernel"
	lines := 0
	procs := 1
	for sc.Scan() {
		lines++
		line := sc.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = path.Base(m[1])
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// The -N name suffix is the GOMAXPROCS the benchmark binary ran
		// with; before it was parsed the record always claimed workers=1,
		// even for parallel benchmark runs.
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil && p > procs {
				procs = p
			}
		}
		nsop, err := strconv.ParseFloat(m[3], 64)
		if err != nil || nsop <= 0 {
			continue
		}
		id := pkg + "/" + strings.TrimPrefix(m[1], "Benchmark")
		s, ok := byID[id]
		if !ok {
			s = &sample{minNS: nsop, order: len(byID)}
			byID[id] = s
		} else if nsop < s.minNS {
			s.minNS = nsop
		}
		s.samples++
	}
	if err := sc.Err(); err != nil {
		return nil, lines, fmt.Errorf("reading input: %w", err)
	}

	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return byID[ids[i]].order < byID[ids[j]].order })

	rep := &benchrec.Report{
		Suite:            "kernel-bench",
		WorkersRequested: procs,
		WorkersEffective: procs,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
	}
	for _, id := range ids {
		s := byID[id]
		wallMS := s.minNS / 1e6
		rep.Tables = append(rep.Tables, benchrec.Table{
			ID:          id,
			Cells:       1,
			CellTiming:  true,
			Samples:     s.samples,
			WallMS:      wallMS,
			CellsPerSec: 1e9 / s.minNS,
		})
		rep.TotalWallMS += wallMS
		if s.samples > rep.BenchRepeat {
			rep.BenchRepeat = s.samples
		}
	}
	return rep, lines, nil
}
