// The -scaling mode: instead of parsing `go test -bench` output, run the
// sparse-core pipeline itself — generate a bipartite preferential-
// attachment graph at each decade from 10^3 to 10^6 vertices, compute a
// k-matching NE with core.SolveKMatchingCSR, audit it against the
// Theorem 3.4 conditions with VerifyKMatchingCSR, and emit one schema-v2
// table per size into the same bench-record stream cmd/benchdiff gates.
// SCALING.md documents how to read the resulting curve.
package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/defender-game/defender/internal/benchrec"
	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/par"
)

// scalingConfig carries the -scaling-* flags.
type scalingConfig struct {
	maxN    int
	attach  int
	k       int
	nu      int
	seed    int64
	repeat  int
	threads []int
}

// scalingSizes is the 10^3 → 10^6 decade ladder, trimmed by -scaling-max-n
// (CI smoke caps it at 10^4; the committed curve runs the full ladder).
func scalingSizes(maxN int) []int {
	var sizes []int
	for n := 1_000; n <= maxN; n *= 10 {
		sizes = append(sizes, n)
	}
	return sizes
}

// runScaling executes the scaling ladder — every size of the decade
// ladder at every rung of the -threads ladder — and writes one bench
// record to out/history like the parser path. Rungs above 1 carry a
// /threads=N table-ID suffix, so a serial history and a parallel curve
// never collide under benchdiff; the record's workers fields report the
// widest rung honestly (workers_effective is the goroutine budget the
// solver really fanned out to, even above gomaxprocs — see SCALING.md on
// oversubscribed rungs). Exit codes: 0 ok, 1 empty ladder, 2 solve or
// write error.
func runScaling(cfg scalingConfig, out, history string, stdout, stderr io.Writer) int {
	sizes := scalingSizes(cfg.maxN)
	if len(sizes) == 0 {
		fmt.Fprintf(stderr, "benchkernel: -scaling-max-n %d leaves no sizes to run\n", cfg.maxN)
		return 1
	}
	if cfg.repeat < 1 {
		cfg.repeat = 1
	}
	if len(cfg.threads) == 0 {
		cfg.threads = []int{1}
	}
	defer par.SetThreads(0)
	// Counters (graph.csr.builds, matching.csr.hopcroftkarp.phases, ...)
	// land in the record's metrics snapshot for the CI shape assertions.
	obs.Default().SetEnabled(true)

	maxRung := cfg.threads[0]
	for _, t := range cfg.threads {
		if t > maxRung {
			maxRung = t
		}
	}
	rep := &benchrec.Report{
		Suite:            "csr-scaling",
		Seed:             cfg.seed,
		WorkersRequested: maxRung,
		WorkersEffective: maxRung,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		BenchRepeat:      cfg.repeat,
	}
	for _, n := range sizes {
		for _, t := range cfg.threads {
			par.SetThreads(t)
			minWall := 0.0
			for rep0 := 0; rep0 < cfg.repeat; rep0++ {
				wallMS, err := scalingRun(n, t, cfg, stdout, rep0 == 0)
				if err != nil {
					fmt.Fprintf(stderr, "benchkernel: n=%d threads=%d: %v\n", n, t, err)
					return 2
				}
				if rep0 == 0 || wallMS < minWall {
					minWall = wallMS
				}
			}
			id := fmt.Sprintf("ba_bipartite/n=%d", n)
			if t > 1 {
				// threads=1 keeps the plain ID so the serial curve stays
				// comparable against pre-ladder history records.
				id = fmt.Sprintf("%s/threads=%d", id, t)
			}
			rep.Tables = append(rep.Tables, benchrec.Table{
				ID:          id,
				Rows:        1,
				Cells:       n,
				CellTiming:  true,
				Samples:     cfg.repeat,
				Threads:     t,
				WallMS:      minWall,
				CellsPerSec: float64(n) / (minWall / 1e3),
			})
			rep.TotalWallMS += minWall
		}
	}
	rep.StampEnvironment("")
	rep.Metrics = obs.Default().Snapshot()

	if out != "" {
		if err := rep.Save(out); err != nil {
			fmt.Fprintln(stderr, "benchkernel:", err)
			return 2
		}
	}
	if history != "" {
		p, err := benchrec.AppendHistory(history, rep)
		if err != nil {
			fmt.Fprintln(stderr, "benchkernel:", err)
			return 2
		}
		fmt.Fprintf(stdout, "appended %s\n", p)
	}
	fmt.Fprintf(stdout, "%d scaling size(s), %d sample(s) each\n", len(rep.Tables), cfg.repeat)
	return 0
}

// scalingRun executes one (generate, solve, verify) cycle at size n on a
// threads-wide solver budget and returns its wall time in milliseconds.
// The generator is re-seeded per run so every repetition — and every
// rung — solves the identical instance; the solved equilibria are
// bit-identical across rungs by the par determinism contract. When
// chatty, the per-size summary line is printed — the exact lines quoted
// in SCALING.md's worked transcript.
func scalingRun(n, threads int, cfg scalingConfig, stdout io.Writer, chatty bool) (float64, error) {
	start := time.Now()
	gen := graph.NewSeededGenerator(cfg.seed)
	c := gen.BarabasiAlbertBipartiteCSR(n, cfg.attach)
	buildMS := float64(time.Since(start).Microseconds()) / 1e3

	// Pure-NE side of the paper (Theorem 3.1): ρ(G) via CSR Hopcroft–Karp
	// plus the Gallai extension — the edge-cover existence bound every
	// pure equilibrium rests on.
	mate, _, err := matching.MaximumBipartiteCSR(c)
	if err != nil {
		return 0, err
	}
	coverUS, _, err := cover.MinimumEdgeCoverCSRFromMatching(c, mate)
	if err != nil {
		return 0, err
	}
	rho := len(coverUS)

	solveStart := time.Now()
	ne, err := core.SolveKMatchingCSRVerified(c, cfg.nu, cfg.k)
	if err != nil {
		return 0, err
	}
	solveMS := float64(time.Since(solveStart).Microseconds()) / 1e3
	if chatty {
		rung := ""
		if threads > 1 {
			rung = fmt.Sprintf(" threads=%d", threads)
		}
		fmt.Fprintf(stdout,
			"n=%d m=%d k=%d nu=%d rho=%d |IS|=%d tuples=%d gain=%s hit=%s build=%.1fms solve+verify=%.1fms%s\n",
			n, c.NumEdges(), cfg.k, cfg.nu, rho, len(ne.VPSupport), len(ne.Tuples),
			ne.DefenderGain().RatString(), ne.HitProbability().RatString(), buildMS, solveMS, rung)
	}
	return float64(time.Since(start).Microseconds()) / 1e3, nil
}
