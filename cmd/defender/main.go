// Command defender computes and inspects Nash equilibria of the Tuple
// model ("The Power of the Defender", ICDCS 2006) on a graph.
//
// Usage:
//
//	defender info      <graph-spec>
//	defender solve     <graph-spec> [-nu N] [-k K] [-v] [-json] [-any]
//	defender pure      <graph-spec> [-nu N] [-k K]
//	defender sim       <graph-spec> [-nu N] [-k K] [-rounds R] [-seed S]
//	defender dot       <graph-spec> [-nu N] [-k K]
//	defender check     <graph-spec> -profile FILE
//	defender value     <graph-spec> [-k K]
//	defender learn     <graph-spec> [-rounds R]
//	defender partition <graph-spec>
//
// Graph specs are parsed by internal/gspec: path:N cycle:N complete:N
// star:N wheel:N ladder:N kbip:A,B grid:R,C hypercube:D binarytree:L
// caterpillar:S,L petersen gnp:N,P[,SEED] bip:A,B,P[,SEED] tree:N[,SEED]
// conn:N,P[,SEED] ba:N,ATTACH[,SEED] ws:N,K,P[,SEED] g6:STRING,
// @file (edge list), or "-" for stdin.
//
// Every subcommand also accepts the observability flags of
// OBSERVABILITY.md: -metrics dumps the metrics snapshot to stderr on
// exit, -debug-addr serves /metrics, expvar and net/http/pprof while the
// command runs, and -trace-out streams span events as JSONL.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/dynamics"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/gspec"
	"github.com/defender-game/defender/internal/obs"
	"github.com/defender-game/defender/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "defender:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 {
		usage()
		return errors.New("expected a subcommand and a graph spec")
	}
	sub, spec := args[0], args[1]
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	var (
		nu        = fs.Int("nu", 4, "number of attackers ν")
		k         = fs.Int("k", 1, "defender power: edges per tuple")
		rounds    = fs.Int("rounds", 20000, "Monte-Carlo or learning rounds (sim, learn)")
		seed      = fs.Int64("seed", 1, "random seed (sim)")
		verbose   = fs.Bool("v", false, "print full distributions (solve)")
		jsonOut   = fs.Bool("json", false, "emit the equilibrium profile as JSON (solve)")
		profile   = fs.String("profile", "", "JSON profile file to verify (check)")
		anyFam    = fs.Bool("any", false, "solve: fall back to any equilibrium family (perfect-matching, regular, LP minimax)")
		metrics   = fs.Bool("metrics", false, "dump the metrics snapshot as JSON to stderr on exit")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, expvar and pprof on this address while running (e.g. localhost:6060)")
		traceOut  = fs.String("trace-out", "", "stream span events as JSONL to this file")
	)
	if err := fs.Parse(args[2:]); err != nil {
		return err
	}
	reg := obs.Default()
	reg.SetEnabled(true)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		reg.SetTraceWriter(f)
		defer func() {
			reg.SetTraceWriter(nil)
			f.Close()
		}()
	}
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return fmt.Errorf("debug-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s (/metrics, /debug/pprof/, /debug/vars)\n", addr)
	}
	if *metrics {
		defer func() {
			// lint:invariant(errlost): exit-time metrics dump to stderr; nothing can act on a failure here
			_ = reg.Snapshot().WriteJSON(os.Stderr)
		}()
	}
	g, err := gspec.Parse(spec)
	if err != nil {
		return err
	}

	switch sub {
	case "info":
		return cmdInfo(g)
	case "solve":
		return cmdSolve(g, *nu, *k, *verbose, *jsonOut, *anyFam)
	case "pure":
		return cmdPure(g, *nu, *k)
	case "sim":
		return cmdSim(g, *nu, *k, *rounds, *seed)
	case "dot":
		return cmdDOT(g, *nu, *k)
	case "check":
		return cmdCheck(g, *profile)
	case "value":
		return cmdValue(g, *k)
	case "learn":
		return cmdLearn(g, *rounds)
	case "partition":
		return cmdPartition(g)
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: defender <info|solve|pure|sim|dot|check|value|learn|partition> <graph-spec> [flags]
graph specs: path:N cycle:N complete:N star:N wheel:N ladder:N kbip:A,B
             grid:R,C hypercube:D binarytree:L caterpillar:S,L petersen
             gnp:N,P[,SEED] bip:A,B,P[,SEED] tree:N[,SEED] conn:N,P[,SEED]
             ba:N,ATTACH[,SEED] ws:N,K,P[,SEED] @file -
subcommands:
  info       structure + equilibrium existence report
  solve      compute & verify a k-matching NE (-json to emit the profile)
  pure       pure-equilibrium frontier (Thm 3.1)
  sim        Monte-Carlo playout of the equilibrium
  dot        Graphviz rendering with the defense support bolded
  check      verify a JSON profile (-profile FILE) as an exact NE
  value      exact minimax value via the LP oracle (ν=1)
  learn      fictitious play + multiplicative weights on the Edge model
  partition  the Cor 4.11 certificate: IS, VC and the SDR witness`)
}

func cmdPartition(g *graph.Graph) error {
	p, err := cover.FindNEPartition(g)
	if err != nil {
		return err
	}
	fmt.Printf("independent set IS (%d vertices): %v\n", len(p.IS), p.IS)
	fmt.Printf("vertex cover VC (%d vertices):   %v\n", len(p.VC), p.VC)
	fmt.Println("expander witness (VC vertex -> IS representative):")
	for _, v := range p.VC {
		fmt.Printf("  %d -> %d\n", v, p.Rep[v])
	}
	fmt.Printf("Π_k(G) admits a k-matching NE for every k <= %d (Cor 4.11)\n", len(p.IS))
	if g.NumVertices() <= 24 {
		if count, err := cover.CountNEPartitions(g); err == nil {
			fmt.Printf("distinct maximal equilibrium partitions: %d\n", count)
		}
	}
	return nil
}

func cmdInfo(g *graph.Graph) error {
	fmt.Printf("vertices: %d\nedges:    %d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("connected: %v\nbipartite: %v\n", g.IsConnected(), g.IsBipartite())
	if ok, d := g.IsRegular(); ok {
		fmt.Printf("regular:   true (degree %d)\n", d)
	} else {
		fmt.Printf("regular:   false (degrees %d..%d)\n", g.MinDegree(), g.MaxDegree())
	}
	if g.HasIsolatedVertex() {
		fmt.Println("WARNING: graph has isolated vertices; the Tuple model is undefined on it")
		return nil
	}
	rho, err := cover.EdgeCoverNumber(g)
	if err != nil {
		return err
	}
	fmt.Printf("edge-cover number ρ(G): %d  (pure NE exists iff k >= %d, Thm 3.1)\n", rho, rho)

	p, err := cover.FindNEPartition(g)
	switch {
	case err == nil:
		fmt.Printf("k-matching NE: YES — partition |IS|=%d |VC|=%d (Cor 4.11)\n", len(p.IS), len(p.VC))
		fmt.Printf("  defender gain at power k: k·ν/%d;  per-attacker arrest probability: k/%d\n", len(p.IS), len(p.IS))
	case errors.Is(err, cover.ErrNoPartition):
		fmt.Println("k-matching NE: NO — no independent-set/expander partition exists (Cor 4.11)")
	case errors.Is(err, cover.ErrPartitionNotFound):
		fmt.Println("k-matching NE: UNKNOWN — heuristic search found no partition")
	default:
		return err
	}
	return nil
}

func cmdSolve(g *graph.Graph, nu, k int, verbose, jsonOut, anyFam bool) error {
	var (
		ne     core.TupleEquilibrium
		family = "k-matching"
		err    error
	)
	if anyFam {
		ne, family, err = core.SolveAny(g, nu, k)
	} else {
		ne, err = core.SolveTupleModel(g, nu, k)
	}
	if err != nil {
		return err
	}
	if err := core.VerifyNE(ne.Game, ne.Profile); err != nil {
		return fmt.Errorf("internal: produced profile failed verification: %w", err)
	}
	if jsonOut {
		data, err := ne.Game.EncodeProfile(ne.Profile)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("%s mixed Nash equilibrium of Π_%d(G), ν=%d\n", family, k, nu)
	fmt.Printf("attacker support D(VP) (|IS|=%d): %v\n", len(ne.VPSupport), ne.VPSupport)
	fmt.Printf("edge support E(D(tp)) (%d edges): %v\n", len(ne.EdgeSupport), ne.EdgeSupport)
	if family == "lp-minimax" {
		fmt.Printf("defender tuples |D(tp)|: %d (LP minimax probabilities)\n", len(ne.Tuples))
	} else {
		fmt.Printf("defender tuples δ=|D(tp)|: %d, each with probability 1/%d\n", len(ne.Tuples), len(ne.Tuples))
	}
	if verbose {
		for i, t := range ne.Tuples {
			fmt.Printf("  t%-3d %v  p=%s\n", i+1, t.Edges(g), ne.Profile.TP.Prob(t).RatString())
		}
	}
	fmt.Printf("defender gain IP_tp = %s\n", ne.DefenderGain().RatString())
	if family == "k-matching" {
		fmt.Printf("per-attacker arrest probability = %s  (= k/|E(D(tp))|)\n", ne.HitProbability().RatString())
	}
	fmt.Println("verified: exact Nash equilibrium (Theorem 3.4 conditions)")
	return nil
}

func cmdPure(g *graph.Graph, nu, k int) error {
	has, err := core.HasPureNE(g, k)
	if err != nil {
		return err
	}
	if !has {
		rho, err := cover.EdgeCoverNumber(g)
		if err != nil {
			return fmt.Errorf("no pure NE for k=%d and no edge cover exists: %w", k, err)
		}
		fmt.Printf("no pure NE for k=%d: edge-cover number is %d (Thm 3.1)\n", k, rho)
		if g.NumVertices() >= 2*k+1 {
			fmt.Printf("(also forced by Cor 3.3: n=%d >= 2k+1=%d)\n", g.NumVertices(), 2*k+1)
		}
		return nil
	}
	gm, p, err := core.BuildPureNE(g, nu, k)
	if err != nil {
		return err
	}
	fmt.Printf("pure NE exists for k=%d (Thm 3.1)\n", k)
	fmt.Printf("defender tuple (an edge cover of size %d): %v\n", k, p.TupleChoice.Edges(g))
	fmt.Printf("defender profit: %d of ν=%d attackers caught wherever they stand\n", gm.ProfitTP(p), nu)
	return nil
}

func cmdSim(g *graph.Graph, nu, k, rounds int, seed int64) error {
	ne, err := core.SolveTupleModel(g, nu, k)
	if err != nil {
		return err
	}
	res, err := sim.Run(ne.Game, ne.Profile, rounds, seed)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d rounds of the k-matching equilibrium (seed %d)\n", res.Rounds, seed)
	fmt.Printf("exact expected catch:    %.6f\n", res.ExpectedCaught)
	fmt.Printf("empirical mean catch:    %.6f  (std err %.6f, z = %+.2f)\n", res.MeanCaught, res.StdErr, res.ZScore())
	hit, _ := ne.HitProbability().Float64()
	fmt.Printf("predicted escape rate:   %.6f per attacker\n", 1-hit)
	lo, hi := res.EscapeRate[0], res.EscapeRate[0]
	for _, r := range res.EscapeRate[1:] {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	fmt.Printf("empirical escape rates:  %.6f .. %.6f\n", lo, hi)
	return nil
}

func cmdCheck(g *graph.Graph, profilePath string) error {
	if profilePath == "" {
		return errors.New("check requires -profile FILE")
	}
	data, err := os.ReadFile(profilePath)
	if err != nil {
		return fmt.Errorf("read profile: %w", err)
	}
	gm, mp, err := game.DecodeProfile(g, data)
	if err != nil {
		return err
	}
	fmt.Printf("profile: Π_%d(G) with ν=%d, |D(VP)|=%d, |D(tp)|=%d\n",
		gm.K(), gm.Attackers(), len(mp.SupportUnionVP()), mp.TP.SupportSize())
	if err := core.VerifyNE(gm, mp); err != nil {
		if errors.Is(err, core.ErrNotEquilibrium) {
			fmt.Printf("NOT a Nash equilibrium: %v\n", err)
			if reg, rerr := core.ComputeRegret(gm, mp); rerr == nil {
				fmt.Printf("deviation incentives: attacker max %s, defender %s\n",
					reg.MaxAttacker().RatString(), reg.Defender.RatString())
			}
			return errors.New("verification failed")
		}
		return err
	}
	fmt.Printf("exact Nash equilibrium ✓ (defender gain %s)\n",
		gm.ExpectedProfitTP(mp).RatString())
	return nil
}

func cmdValue(g *graph.Graph, k int) error {
	value, tuples, probs, err := core.GameValue(g, k)
	if err != nil {
		return err
	}
	fmt.Printf("minimax value of Π_%d(G) with one attacker: %s\n", k, value.RatString())
	fmt.Println("(the probability an optimal defender catches an optimal attacker)")
	support := 0
	for _, p := range probs {
		if p.Sign() > 0 {
			support++
		}
	}
	fmt.Printf("optimal defender support: %d of %d tuples\n", support, len(tuples))
	return nil
}

func cmdLearn(g *graph.Graph, rounds int) error {
	fp, err := dynamics.FictitiousPlay(g, rounds)
	if err != nil {
		return err
	}
	lo, _ := fp.LowerBound.Float64()
	hi, _ := fp.UpperBound.Float64()
	fmt.Printf("fictitious play, %d rounds: value ∈ [%.5f, %.5f] (exact bounds %s .. %s)\n",
		fp.Rounds, lo, hi, fp.LowerBound.RatString(), fp.UpperBound.RatString())
	mw, err := dynamics.MultiplicativeWeights(g, rounds, 0)
	if err != nil {
		return err
	}
	fmt.Printf("multiplicative weights, %d rounds: value ∈ [%.5f, %.5f]\n",
		mw.Rounds, mw.LowerBound, mw.UpperBound)
	if value, _, _, err := core.GameValue(g, 1); err == nil {
		fmt.Printf("LP oracle (exact):       value = %s\n", value.RatString())
	}
	return nil
}

func cmdDOT(g *graph.Graph, nu, k int) error {
	ne, err := core.SolveTupleModel(g, nu, k)
	if err != nil {
		// Fall back to a plain rendering when no equilibrium exists.
		fmt.Print(g.DOT("G", nil))
		return nil
	}
	fmt.Print(g.DOT("G", ne.EdgeSupport))
	return nil
}
