package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI is exercised through run(); output goes to the test's stdout,
// assertions are on error values and produced artifacts.

func TestRunRequiresArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"solve"}); err == nil {
		t.Error("missing spec must fail")
	}
	if err := run([]string{"bogus", "path:3"}); err == nil {
		t.Error("unknown subcommand must fail")
	}
	if err := run([]string{"solve", "unknown:spec"}); err == nil {
		t.Error("bad spec must fail")
	}
	if err := run([]string{"solve", "path:3", "-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag must fail")
	}
}

func TestRunInfo(t *testing.T) {
	for _, spec := range []string{"grid:3,3", "complete:5", "cycle:7", "petersen"} {
		if err := run([]string{"info", spec}); err != nil {
			t.Errorf("info %s: %v", spec, err)
		}
	}
}

func TestRunSolve(t *testing.T) {
	if err := run([]string{"solve", "cycle:8", "-nu", "4", "-k", "2", "-v"}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	// Unsolvable graphs surface an error.
	if err := run([]string{"solve", "complete:5", "-k", "2"}); err == nil {
		t.Error("K5 has no k-matching NE; solve must fail")
	}
}

func TestRunPure(t *testing.T) {
	if err := run([]string{"pure", "cycle:6", "-k", "3"}); err != nil {
		t.Errorf("pure (exists): %v", err)
	}
	if err := run([]string{"pure", "cycle:6", "-k", "2"}); err != nil {
		t.Errorf("pure (absent is not an error): %v", err)
	}
}

func TestRunSim(t *testing.T) {
	if err := run([]string{"sim", "kbip:2,3", "-nu", "3", "-k", "1", "-rounds", "500"}); err != nil {
		t.Errorf("sim: %v", err)
	}
}

func TestRunDot(t *testing.T) {
	if err := run([]string{"dot", "grid:2,3", "-k", "1"}); err != nil {
		t.Errorf("dot: %v", err)
	}
	// Fallback rendering for graphs without equilibria.
	if err := run([]string{"dot", "complete:5", "-k", "1"}); err != nil {
		t.Errorf("dot fallback: %v", err)
	}
}

func TestRunSolveAny(t *testing.T) {
	// Petersen admits no k-matching NE; -any must succeed anyway.
	if err := run([]string{"solve", "petersen", "-nu", "2", "-k", "1", "-any", "-v"}); err != nil {
		t.Fatalf("solve -any: %v", err)
	}
	// LP-minimax family on an odd wheel.
	if err := run([]string{"solve", "wheel:7", "-k", "2", "-any"}); err != nil {
		t.Fatalf("solve -any wheel: %v", err)
	}
}

func TestRunPartition(t *testing.T) {
	if err := run([]string{"partition", "grid:2,3"}); err != nil {
		t.Errorf("partition: %v", err)
	}
	if err := run([]string{"partition", "complete:5"}); err == nil {
		t.Error("K5 has no partition; must fail")
	}
}

func TestRunValueAndLearn(t *testing.T) {
	if err := run([]string{"value", "cycle:5", "-k", "1"}); err != nil {
		t.Errorf("value: %v", err)
	}
	if err := run([]string{"learn", "star:5", "-rounds", "400"}); err != nil {
		t.Errorf("learn: %v", err)
	}
}

func TestRunObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	if err := run([]string{"solve", "cycle:8", "-k", "2", "-metrics", "-trace-out", trace}); err != nil {
		t.Fatalf("solve with observability flags: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	if !strings.Contains(string(data), `"core.solve_tuple"`) {
		t.Errorf("trace lacks the core.solve_tuple span:\n%s", data)
	}
	// An unwritable trace path fails before any work happens.
	if err := run([]string{"solve", "cycle:8", "-trace-out", "/nonexistent-dir/t.jsonl"}); err == nil {
		t.Error("unwritable trace-out path must fail")
	}
}

func TestRunCheckRoundTrip(t *testing.T) {
	// Solve to JSON via the library path used by -json, then check it.
	dir := t.TempDir()
	profile := filepath.Join(dir, "ne.json")

	// Generate the profile through the CLI by capturing stdout.
	old := os.Stdout
	f, err := os.Create(profile)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	err = run([]string{"solve", "cycle:6", "-nu", "2", "-k", "2", "-json"})
	os.Stdout = old
	if cerr := f.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatalf("solve -json: %v", err)
	}
	data, err := os.ReadFile(profile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"tuplePlayer"`) {
		t.Fatalf("profile JSON malformed:\n%s", data)
	}

	if err := run([]string{"check", "cycle:6", "-profile", profile}); err != nil {
		t.Errorf("check: %v", err)
	}
	// Checking against the wrong graph must fail.
	if err := run([]string{"check", "path:7", "-profile", profile}); err == nil {
		t.Error("profile against wrong graph must fail")
	}
	// Missing flags and files.
	if err := run([]string{"check", "cycle:6"}); err == nil {
		t.Error("check without -profile must fail")
	}
	if err := run([]string{"check", "cycle:6", "-profile", filepath.Join(dir, "nope.json")}); err == nil {
		t.Error("missing profile file must fail")
	}
}
