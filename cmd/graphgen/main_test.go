package main

import (
	"os"
	"testing"

	"github.com/defender-game/defender/internal/graph"
)

func TestGenerateFamilies(t *testing.T) {
	tests := []struct {
		spec  string
		wantN int
	}{
		{"path:6", 6},
		{"cycle:5", 5},
		{"complete:4", 4},
		{"star:7", 7},
		{"kbip:2,3", 5},
		{"grid:2,4", 8},
		{"hypercube:3", 8},
		{"petersen", 10},
		{"tree:12", 12},
		{"gnp:9,0.5,2", 9},
		{"bip:3,4,0.5", 7},
		{"ba:20,2,3", 20},
		{"ws:20,4,0.2,3", 20},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			g, err := generate(tt.spec)
			if err != nil {
				t.Fatalf("generate(%q): %v", tt.spec, err)
			}
			if g.NumVertices() != tt.wantN {
				t.Errorf("n = %d, want %d", g.NumVertices(), tt.wantN)
			}
		})
	}
}

func TestGenerateRoundTripsThroughParser(t *testing.T) {
	g, err := generate("ba:25,2,5")
	if err != nil {
		t.Fatal(err)
	}
	back, err := graph.ParseString(g.EncodeString())
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Error("round trip changed the edge count")
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := []string{
		"", "wat:3", "path", "path:x", "kbip:1", "grid:2",
		"gnp:5", "gnp:5,x", "bip:1,2", "bip:1,2,y",
		"ba:10", "ws:10,4", "ws:10,4,z",
	}
	for _, spec := range bad {
		if _, err := generate(spec); err == nil {
			t.Errorf("generate(%q) should fail", spec)
		}
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"a", "b"}, nil); err == nil {
		t.Error("two args must fail")
	}
	if err := run([]string{"nope:1"}, nil); err == nil {
		t.Error("bad spec must fail")
	}
}

func TestRunWritesEdgeList(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "out-*.edges")
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"cycle:5"}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	back, err := graph.ParseString(string(data))
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if back.NumVertices() != 5 || back.NumEdges() != 5 {
		t.Errorf("round trip: n=%d m=%d", back.NumVertices(), back.NumEdges())
	}
}
