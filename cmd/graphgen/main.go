// Command graphgen emits graphs in the library's edge-list exchange format,
// for piping into `defender <cmd> -` or saving for `@file` specs:
//
//	graphgen grid:4,5 > fabric.edges
//	graphgen gnp:50,0.1,7 | defender info -
//
// It accepts the same graph specifications as the defender command, plus
// the scale-free and small-world topologies:
//
//	ba:N,ATTACH[,SEED]   Barabási–Albert preferential attachment
//	ws:N,K,P[,SEED]      Watts–Strogatz small world
package main

import (
	"fmt"
	"os"

	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/gspec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: graphgen <graph-spec>")
	}
	g, err := generate(args[0])
	if err != nil {
		return err
	}
	return g.Write(out)
}

// generate resolves the spec through the shared grammar.
func generate(spec string) (*graph.Graph, error) {
	return gspec.Parse(spec)
}
