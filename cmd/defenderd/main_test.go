package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// bootServer runs defenderd on a free port and returns its base URL plus
// a shutdown func that triggers the graceful drain and waits for run to
// return.
func bootServer(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() {
		errCh <- run(ctx, args, func(a string) { addrCh <- a })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		cancel()
		t.Fatalf("defenderd exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("defenderd never became ready")
	}
	return "http://" + addr, func() error {
		cancel()
		select {
		case err := <-errCh:
			return err
		case <-time.After(20 * time.Second):
			return fmt.Errorf("defenderd did not drain in time")
		}
	}
}

// TestBootSolveShutdown is the boot smoke: the daemon comes up, answers
// /healthz and a real solve with an exact game value, and drains cleanly
// on cancellation.
func TestBootSolveShutdown(t *testing.T) {
	base, shutdown := bootServer(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[0,5]],"k":2}`
	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	var payload struct {
		Result struct {
			GameValue string `json:"game_value"`
			Rho       int    `json:"rho"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Result.GameValue != "2/3" || payload.Result.Rho != 3 {
		t.Errorf("C6 k=2: got value %q rho %d, want 2/3 and 3", payload.Result.GameValue, payload.Result.Rho)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestTraceOut: the solve span stream lands in the -trace-out file.
func TestTraceOut(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	base, shutdown := bootServer(t, "-trace-out", trace)
	resp, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"n":2,"edges":[[0,1]],"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "server.solve") {
		t.Errorf("trace stream missing the server.solve span:\n%s", data)
	}
}

// TestTraceHeaderAndRequestLog: the daemon wires tracing end to end — the
// response carries X-Defender-Trace-Id, the -trace-out spans share that
// trace id, and the -log-out request log records it.
func TestTraceHeaderAndRequestLog(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	reqlog := filepath.Join(dir, "requests.jsonl")
	base, shutdown := bootServer(t, "-trace-out", trace, "-log-out", reqlog, "-trace-sample", "1.0")
	resp, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"n":2,"edges":[[0,1]],"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Defender-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("X-Defender-Trace-Id = %q, want 32 hex chars", traceID)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	spans, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(spans), traceID) {
		t.Errorf("trace stream lacks the response's trace id %s:\n%s", traceID, spans)
	}
	logged, err := os.ReadFile(reqlog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logged), traceID) || !strings.Contains(string(logged), `"event":"request"`) {
		t.Errorf("request log lacks the traced request:\n%s", logged)
	}
}

// TestSLOEndpoint: the debug mux serves the SLO window as JSON.
func TestSLOEndpoint(t *testing.T) {
	// The debug listener's bound address is only printed to stderr, so
	// reserve a free port up front and pass it explicitly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := ln.Addr().String()
	ln.Close()
	base, shutdown := bootServer(t, "-debug-addr", debugAddr)
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatal(err)
		}
	}()
	resp, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"n":2,"edges":[[0,1]],"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sloResp, err := http.Get("http://" + debugAddr + "/slo")
	if err != nil {
		t.Fatalf("GET /slo: %v", err)
	}
	defer sloResp.Body.Close()
	var status struct {
		Requests int64 `json:"requests"`
	}
	if err := json.NewDecoder(sloResp.Body).Decode(&status); err != nil {
		t.Fatalf("decode /slo: %v", err)
	}
	if status.Requests < 1 {
		t.Errorf("/slo requests = %d, want >= 1", status.Requests)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "positional"}, nil); err == nil {
		t.Error("positional arguments must be rejected")
	}
	if err := run(context.Background(), []string{"-trace-out", "/nonexistent-dir/t.jsonl"}, nil); err == nil {
		t.Error("unwritable trace-out path must fail")
	}
	if err := run(context.Background(), []string{"-log-out", "/nonexistent-dir/r.jsonl"}, nil); err == nil {
		t.Error("unwritable log-out path must fail")
	}
	if err := run(context.Background(), []string{"-trace-sample", "1.5"}, nil); err == nil {
		t.Error("trace-sample outside [0, 1] must be rejected")
	}
}
