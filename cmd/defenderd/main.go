// Command defenderd serves the defender solve API of internal/server over
// HTTP: POST /v1/solve takes a graph (edge list or graph6) and a defender
// power k, and answers with Nash-equilibrium existence, the defender's
// mixed strategy, and the exact game value as "p/q" rationals; solves
// that outrun the synchronous wait window convert to 202 job handles
// polled at GET /v1/jobs/{id}. Requests flow through a bounded worker
// broker in front of a graph6-keyed response cache, so repeated graphs
// cost one solve and overload sheds as 429 instead of queueing without
// bound.
//
// Usage:
//
//	defenderd [-addr :8080] [-debug-addr HOST:PORT] [-workers N]
//	          [-solver-threads N] [-queue-cap N] [-queue-high-water N]
//	          [-sync-wait 2s] [-solve-timeout 60s] [-max-vertices 256]
//	          [-trace-out FILE] [-trace-sample 1.0] [-log-out FILE]
//
// -debug-addr exposes /metrics (JSON or Prometheus exposition), /slo,
// expvar and net/http/pprof on a separate, private mux — the public
// -addr only ever serves the /v1 API, /healthz and /readyz. -trace-out
// streams span events as JSONL: every request is assigned (or keeps, via
// the X-Defender-Trace-Id header) a trace id, and the spans of a sampled
// request — server.solve, broker.queue_wait, and the solver stages under
// them — share it (see TRACING.md). -trace-sample tunes the head-based
// sampling rate; -log-out streams one structured JSONL line per request.
// SIGINT/SIGTERM drain in-flight solves before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/defender-game/defender/internal/obs"
	obslog "github.com/defender-game/defender/internal/obs/log"
	"github.com/defender-game/defender/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "defenderd:", err)
		os.Exit(1)
	}
}

// run boots the service and blocks until ctx is cancelled, then drains.
// ready, when non-nil, receives the bound public address once the
// listener is up — the boot smoke test and scripted harnesses use it
// instead of parsing log output.
func run(ctx context.Context, args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("defenderd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "public API listen address (\":0\" picks a free port)")
		debugAddr    = fs.String("debug-addr", "", "serve /metrics, expvar and pprof on this private address (e.g. localhost:6060)")
		workers      = fs.Int("workers", 0, "broker pool size: concurrent solves (0 = default 4)")
		solverThr    = fs.Int("solver-threads", 0, "par thread budget per solve; workers x solver-threads is clamped to GOMAXPROCS (0 = default 1)")
		queueCap     = fs.Int("queue-cap", 0, "broker queue bound before 429s (0 = default 64)")
		syncWait     = fs.Duration("sync-wait", 0, "how long POST /v1/solve waits before converting to a 202 job (0 = default 2s)")
		solveTimeout = fs.Duration("solve-timeout", 0, "per-solve deadline (0 = default 60s)")
		maxVertices  = fs.Int("max-vertices", 0, "largest accepted graph (0 = default 256)")
		traceOut     = fs.String("trace-out", "", "stream span events as JSONL to this file")
		traceSample  = fs.Float64("trace-sample", 1.0, "head-based trace sampling rate in [0, 1]")
		logOut       = fs.String("log-out", "", "stream structured request logs as JSONL to this file")
		queueHW      = fs.Int("queue-high-water", 0, "queue depth at which /readyz reports unready (0 = 3/4 of queue-cap)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *traceSample < 0 || *traceSample > 1 {
		return fmt.Errorf("trace-sample: rate %v outside [0, 1]", *traceSample)
	}

	reg := obs.Default()
	reg.SetEnabled(true)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		reg.SetTraceWriter(f)
		defer func() {
			reg.SetTraceWriter(nil)
			f.Close()
		}()
	}
	var requestLog *obslog.Logger
	if *logOut != "" {
		f, err := os.Create(*logOut)
		if err != nil {
			return fmt.Errorf("log-out: %w", err)
		}
		defer f.Close()
		requestLog = obslog.New(f)
	}

	api := server.New(server.Config{
		Workers:         *workers,
		SolverThreads:   *solverThr,
		QueueCap:        *queueCap,
		SyncWait:        *syncWait,
		SolveTimeout:    *solveTimeout,
		MaxVertices:     *maxVertices,
		TraceSampleRate: traceSample,
		QueueHighWater:  *queueHW,
		RequestLog:      requestLog,
	})
	if got := api.SolverThreads(); *solverThr > 1 && got < *solverThr {
		fmt.Fprintf(os.Stderr, "defenderd: -solver-threads %d clamped to %d (workers x threads <= GOMAXPROCS)\n", *solverThr, got)
	}
	if *debugAddr != "" {
		bound, err := obs.StartDebugServerWith(*debugAddr, reg, map[string]http.Handler{
			"/slo": api.SLOHandler(),
		})
		if err != nil {
			return fmt.Errorf("debug-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "defenderd: debug server on http://%s (/metrics, /slo, /debug/pprof/, /debug/vars)\n", bound)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	httpSrv := &http.Server{
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "defenderd: serving /v1 on http://%s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; nothing left to drain.
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// stop the broker behind them.
	fmt.Fprintln(os.Stderr, "defenderd: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	if err := api.Close(drainCtx); err != nil {
		return fmt.Errorf("broker drain: %w", err)
	}
	return nil
}
