package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/defender-game/defender/internal/obs"
)

// loadEvents parses one span event per line. Blank lines are tolerated
// (trailing newline); malformed lines are an error, because a half-written
// trace file should fail a CI gate loudly rather than skew its numbers.
func loadEvents(r io.Reader) ([]obs.SpanEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var events []obs.SpanEvent
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev obs.SpanEvent
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("line %d: span event without a name", line)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// trace is one reassembled request: every event sharing a trace_id, in
// start-time order.
type trace struct {
	id    string
	spans []obs.SpanEvent
}

// start is the earliest span start of the trace.
func (t *trace) start() int64 {
	if len(t.spans) == 0 {
		return 0
	}
	return t.spans[0].StartUnixNS
}

// end is the latest span end of the trace.
func (t *trace) end() int64 {
	var max int64
	for _, sp := range t.spans {
		if e := sp.StartUnixNS + sp.DurNS; e > max {
			max = e
		}
	}
	return max
}

// root returns the trace's root span (empty parent_id) and whether exactly
// one exists.
func (t *trace) root() (obs.SpanEvent, bool) {
	var root obs.SpanEvent
	n := 0
	for _, sp := range t.spans {
		if sp.ParentID == "" {
			root = sp
			n++
		}
	}
	return root, n == 1
}

// buildTraces groups traced events by trace_id; free-standing events
// (empty trace_id) are not part of any trace. Spans within a trace sort by
// start time, span id breaking ties so the order is total.
func buildTraces(events []obs.SpanEvent) map[string]*trace {
	traces := make(map[string]*trace)
	for _, ev := range events {
		if ev.TraceID == "" {
			continue
		}
		t := traces[ev.TraceID]
		if t == nil {
			t = &trace{id: ev.TraceID}
			traces[ev.TraceID] = t
		}
		t.spans = append(t.spans, ev)
	}
	for _, t := range traces {
		sort.Slice(t.spans, func(i, j int) bool {
			if t.spans[i].StartUnixNS != t.spans[j].StartUnixNS {
				return t.spans[i].StartUnixNS < t.spans[j].StartUnixNS
			}
			return t.spans[i].SpanID < t.spans[j].SpanID
		})
	}
	return traces
}

// sortedTraces orders traces by start time (trace id breaking ties) for
// deterministic listings.
func sortedTraces(traces map[string]*trace) []*trace {
	out := make([]*trace, 0, len(traces))
	for _, t := range traces {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start() != out[j].start() {
			return out[i].start() < out[j].start()
		}
		return out[i].id < out[j].id
	})
	return out
}

// countTraced counts events that belong to a trace.
func countTraced(events []obs.SpanEvent) int {
	n := 0
	for _, ev := range events {
		if ev.TraceID != "" {
			n++
		}
	}
	return n
}

// formatDur renders nanoseconds at microsecond resolution — span
// durations are µs-to-seconds scale, finer digits are noise.
func formatDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// percentile returns the nearest-rank p-th percentile of sorted (0 < p <=
// 100). Zero on empty input.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p/100+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// printSummary renders the per-span-name latency table over every event,
// traced or not.
func printSummary(w io.Writer, events []obs.SpanEvent) {
	byName := make(map[string][]int64)
	for _, ev := range events {
		byName[ev.Name] = append(byName[ev.Name], ev.DurNS)
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%d span(s) in %d trace(s)\n", len(events), len(buildTraces(events)))
	if len(names) == 0 {
		return
	}
	fmt.Fprintf(w, "%-28s %7s %12s %12s %12s %12s\n", "span", "count", "p50", "p99", "max", "total")
	for _, name := range names {
		durs := byName[name]
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		var total int64
		for _, d := range durs {
			total += d
		}
		fmt.Fprintf(w, "%-28s %7d %12s %12s %12s %12s\n", name, len(durs),
			formatDur(percentile(durs, 50)), formatDur(percentile(durs, 99)),
			formatDur(durs[len(durs)-1]), formatDur(total))
	}
}

// printList renders one line per trace.
func printList(w io.Writer, events []obs.SpanEvent) {
	traces := sortedTraces(buildTraces(events))
	for _, t := range traces {
		rootName := "?"
		if root, ok := t.root(); ok {
			rootName = root.Name
		}
		fmt.Fprintf(w, "%s  spans=%-3d dur=%-12s root=%s\n",
			t.id, len(t.spans), formatDur(t.end()-t.start()), rootName)
	}
	fmt.Fprintf(w, "%d trace(s)\n", len(traces))
}

const barWidth = 32

// printWaterfall renders one trace as an indented tree with proportional
// timing bars, followed by its critical path.
func printWaterfall(w io.Writer, t *trace) {
	start, total := t.start(), t.end()-t.start()
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(w, "trace %s: %d span(s), %s\n", t.id, len(t.spans), formatDur(t.end()-t.start()))

	children := make(map[string][]obs.SpanEvent)
	ids := make(map[string]bool, len(t.spans))
	for _, sp := range t.spans {
		ids[sp.SpanID] = true
	}
	var roots, orphans []obs.SpanEvent
	for _, sp := range t.spans {
		switch {
		case sp.ParentID == "":
			roots = append(roots, sp)
		case ids[sp.ParentID]:
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		default:
			orphans = append(orphans, sp)
		}
	}
	var render func(sp obs.SpanEvent, depth int)
	render = func(sp obs.SpanEvent, depth int) {
		off := int(int64(barWidth) * (sp.StartUnixNS - start) / total)
		width := int(int64(barWidth) * sp.DurNS / total)
		if width < 1 {
			width = 1
		}
		if off+width > barWidth {
			width = barWidth - off
		}
		bar := strings.Repeat(" ", off) + strings.Repeat("=", width) +
			strings.Repeat(" ", barWidth-off-width)
		label := strings.Repeat("  ", depth) + sp.Name
		fmt.Fprintf(w, "  %-34s %10s |%s|%s\n", label, formatDur(sp.DurNS), bar, renderAttrs(sp.Attrs))
		for _, c := range children[sp.SpanID] {
			render(c, depth+1)
		}
	}
	for _, sp := range roots {
		render(sp, 0)
	}
	if len(orphans) > 0 {
		fmt.Fprintf(w, "  %d orphan span(s):\n", len(orphans))
		for _, sp := range orphans {
			fmt.Fprintf(w, "    %s (%s) parent %s not in trace\n", sp.Name, formatDur(sp.DurNS), sp.ParentID)
		}
	}
	if len(roots) == 1 {
		path := criticalPath(roots[0], children)
		names := make([]string, len(path))
		for i, sp := range path {
			names[i] = sp.Name
		}
		leaf := path[len(path)-1]
		fmt.Fprintf(w, "critical path: %s (ends at %s, %s into the trace)\n",
			strings.Join(names, " -> "), leaf.Name,
			formatDur(leaf.StartUnixNS+leaf.DurNS-start))
	}
}

// criticalPath descends from the root to the child whose end time is
// latest at every level: the chain of spans that determined when the
// request finished.
func criticalPath(root obs.SpanEvent, children map[string][]obs.SpanEvent) []obs.SpanEvent {
	path := []obs.SpanEvent{root}
	cur := root
	for {
		kids := children[cur.SpanID]
		if len(kids) == 0 {
			return path
		}
		last := kids[0]
		for _, k := range kids[1:] {
			if k.StartUnixNS+k.DurNS > last.StartUnixNS+last.DurNS {
				last = k
			}
		}
		path = append(path, last)
		cur = last
	}
}

// renderAttrs formats span annotations as sorted " k=v" pairs.
func renderAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, attrs[k])
	}
	return b.String()
}

// printP99 lists the slowest occurrences (at or above the p99 duration) of
// one span name, with the trace ids to pull their waterfalls. It accepts
// both the span spelling ("server.solve") and the histogram spelling
// ("server.solve.seconds"), mirroring the exemplars of /metrics. Returns
// false when no span matches.
func printP99(w io.Writer, events []obs.SpanEvent, name string) bool {
	name = strings.TrimSuffix(name, ".seconds")
	var matched []obs.SpanEvent
	for _, ev := range events {
		if ev.Name == name {
			matched = append(matched, ev)
		}
	}
	if len(matched) == 0 {
		return false
	}
	durs := make([]int64, len(matched))
	for i, ev := range matched {
		durs[i] = ev.DurNS
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p99 := percentile(durs, 99)
	sort.Slice(matched, func(i, j int) bool {
		if matched[i].DurNS != matched[j].DurNS {
			return matched[i].DurNS > matched[j].DurNS
		}
		return matched[i].SpanID < matched[j].SpanID
	})
	fmt.Fprintf(w, "%s: %d span(s), p99 = %s\n", name, len(matched), formatDur(p99))
	const maxListed = 10
	listed := 0
	for _, ev := range matched {
		if ev.DurNS < p99 || listed == maxListed {
			break
		}
		ref := "(untraced)"
		if ev.TraceID != "" {
			ref = "trace " + ev.TraceID
		}
		fmt.Fprintf(w, "  %10s  %s\n", formatDur(ev.DurNS), ref)
		listed++
	}
	return true
}

// checkTraces verifies the connectivity contract of every trace — exactly
// one root span, every parent reference resolving within the trace — and,
// when required names are given, that each trace contains all of them.
// Returns human-readable violations, empty when the file is clean.
func checkTraces(events []obs.SpanEvent, required []string) []string {
	var violations []string
	for _, t := range sortedTraces(buildTraces(events)) {
		ids := make(map[string]bool, len(t.spans))
		names := make(map[string]bool, len(t.spans))
		roots := 0
		for _, sp := range t.spans {
			ids[sp.SpanID] = true
			names[sp.Name] = true
			if sp.ParentID == "" {
				roots++
			}
		}
		if roots != 1 {
			violations = append(violations,
				fmt.Sprintf("trace %s: %d root span(s), want exactly 1", t.id, roots))
		}
		for _, sp := range t.spans {
			if sp.ParentID != "" && !ids[sp.ParentID] {
				violations = append(violations,
					fmt.Sprintf("trace %s: span %s (%s) references parent %s outside the trace",
						t.id, sp.Name, sp.SpanID, sp.ParentID))
			}
		}
		for _, name := range required {
			if !names[strings.TrimSuffix(name, ".seconds")] {
				violations = append(violations,
					fmt.Sprintf("trace %s: missing required span %q", t.id, name))
			}
		}
	}
	return violations
}
