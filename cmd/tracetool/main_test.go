package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/defender-game/defender/internal/obs"
)

// writeTraceFile marshals events as the JSONL a -trace-out run produces.
func writeTraceFile(t *testing.T, events []obs.SpanEvent) string {
	t.Helper()
	var buf bytes.Buffer
	for _, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTool(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = realMain(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

const (
	traceA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	traceB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
)

// connectedEvents is a well-formed two-trace file: trace A is the full
// request shape (solve -> queue_wait + solver work), trace B is a minimal
// one-span trace, plus one free-standing span.
func connectedEvents() []obs.SpanEvent {
	return []obs.SpanEvent{
		{Name: "server.solve", TraceID: traceA, SpanID: "a100000000000000", StartUnixNS: 1000, DurNS: 5000},
		{Name: "broker.queue_wait", TraceID: traceA, SpanID: "a200000000000000", ParentID: "a100000000000000", StartUnixNS: 1100, DurNS: 400},
		{Name: "core.solve_any", TraceID: traceA, SpanID: "a300000000000000", ParentID: "a100000000000000", StartUnixNS: 1600, DurNS: 4000},
		{Name: "lp.simplex", TraceID: traceA, SpanID: "a400000000000000", ParentID: "a300000000000000", StartUnixNS: 1700, DurNS: 3500,
			Attrs: map[string]string{"rows": "12"}},
		{Name: "server.solve", TraceID: traceB, SpanID: "b100000000000000", StartUnixNS: 9000, DurNS: 2000},
		{Name: "experiments.table", StartUnixNS: 500, DurNS: 100},
	}
}

func TestSummaryDefaultMode(t *testing.T) {
	path := writeTraceFile(t, connectedEvents())
	code, out, _ := runTool(t, path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, "6 span(s) in 2 trace(s)") {
		t.Errorf("summary header missing:\n%s", out)
	}
	for _, name := range []string{"server.solve", "broker.queue_wait", "lp.simplex", "experiments.table"} {
		if !strings.Contains(out, name) {
			t.Errorf("summary lacks row for %s:\n%s", name, out)
		}
	}
}

func TestListTraces(t *testing.T) {
	path := writeTraceFile(t, connectedEvents())
	code, out, _ := runTool(t, "-list", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 2 trace lines + count, got %d:\n%s", len(lines), out)
	}
	// Trace A starts earlier, so it lists first.
	if !strings.HasPrefix(lines[0], traceA) || !strings.Contains(lines[0], "spans=4") {
		t.Errorf("trace A line wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], traceB) || !strings.Contains(lines[1], "root=server.solve") {
		t.Errorf("trace B line wrong: %q", lines[1])
	}
}

func TestWaterfallAndCriticalPath(t *testing.T) {
	path := writeTraceFile(t, connectedEvents())
	code, out, _ := runTool(t, "-trace", traceA, path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, "trace "+traceA+": 4 span(s)") {
		t.Errorf("waterfall header missing:\n%s", out)
	}
	// Nesting: lp.simplex sits two levels under the root.
	if !strings.Contains(out, "    lp.simplex") {
		t.Errorf("lp.simplex not indented under core.solve_any:\n%s", out)
	}
	if !strings.Contains(out, "rows=12") {
		t.Errorf("span attrs not rendered:\n%s", out)
	}
	// The latest-ending chain is solve -> solve_any -> simplex.
	if !strings.Contains(out, "critical path: server.solve -> core.solve_any -> lp.simplex") {
		t.Errorf("critical path wrong:\n%s", out)
	}
}

func TestTraceNotFound(t *testing.T) {
	path := writeTraceFile(t, connectedEvents())
	code, _, errOut := runTool(t, "-trace", "deadbeef", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "not found") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestP99BothSpellings(t *testing.T) {
	path := writeTraceFile(t, connectedEvents())
	for _, name := range []string{"server.solve", "server.solve.seconds"} {
		code, out, _ := runTool(t, "-p99", name, path)
		if code != 0 {
			t.Fatalf("-p99 %s: exit = %d, want 0", name, code)
		}
		if !strings.Contains(out, "server.solve: 2 span(s)") {
			t.Errorf("-p99 %s header wrong:\n%s", name, out)
		}
		// The slowest server.solve is trace A's 5µs root.
		if !strings.Contains(out, "trace "+traceA) {
			t.Errorf("-p99 %s does not name the slowest trace:\n%s", name, out)
		}
	}
}

func TestP99UnknownName(t *testing.T) {
	path := writeTraceFile(t, connectedEvents())
	code, _, errOut := runTool(t, "-p99", "no.such.span", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "no spans named") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestCheckConnectedPasses(t *testing.T) {
	path := writeTraceFile(t, connectedEvents())
	code, out, _ := runTool(t, "-check", "-require", "server.solve", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, "ok: 2 trace(s), 5 span(s) connected") {
		t.Errorf("check output wrong:\n%s", out)
	}
}

func TestCheckOrphanParentFails(t *testing.T) {
	events := connectedEvents()
	events = append(events, obs.SpanEvent{
		Name: "cover.gallai", TraceID: traceA, SpanID: "a500000000000000",
		ParentID: "ffffffffffffffff", StartUnixNS: 2000, DurNS: 10,
	})
	path := writeTraceFile(t, events)
	code, _, errOut := runTool(t, "-check", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "references parent ffffffffffffffff outside the trace") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestCheckMultipleRootsFails(t *testing.T) {
	events := connectedEvents()
	events = append(events, obs.SpanEvent{
		Name: "server.solve", TraceID: traceB, SpanID: "b200000000000000", StartUnixNS: 9500, DurNS: 100,
	})
	path := writeTraceFile(t, events)
	code, _, errOut := runTool(t, "-check", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "2 root span(s), want exactly 1") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestCheckRequiredSpanMissing(t *testing.T) {
	path := writeTraceFile(t, connectedEvents())
	// Trace B has no broker.queue_wait span.
	code, _, errOut := runTool(t, "-check", "-require", "server.solve,broker.queue_wait", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, `trace `+traceB+`: missing required span "broker.queue_wait"`) {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestMalformedLineRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"name\":\"x\",\"dur_ns\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runTool(t, path)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "line 2") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	path := writeTraceFile(t, connectedEvents())
	cases := [][]string{
		{},                        // no input file
		{"-list", "-check", path}, // two modes
		{"-require", "a", path},   // -require without -check
		{"/no/such/file.jsonl"},   // unreadable input
		{"-unknown-flag", path},   // flag parse error
	}
	for _, args := range cases {
		if code, _, _ := runTool(t, args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	durs := make([]int64, 100)
	for i := range durs {
		durs[i] = int64(i + 1)
	}
	if got := percentile(durs, 50); got != 50 {
		t.Errorf("p50 = %d, want 50", got)
	}
	if got := percentile(durs, 99); got != 99 {
		t.Errorf("p99 = %d, want 99", got)
	}
	if got := percentile(durs[:1], 99); got != 1 {
		t.Errorf("p99 of singleton = %d, want 1", got)
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("p99 of empty = %d, want 0", got)
	}
}
