// Command tracetool analyzes the JSONL span streams written by defenderd
// and cmd/experiments via -trace-out (internal/obs.SpanEvent). It turns a
// flat event file back into request traces: per-span-name latency
// summaries, per-trace listings, waterfall renderings with the critical
// path, p99 exemplar lookup, and a connectivity check suitable as a CI
// gate (see TRACING.md and the trace-smoke job).
//
// Usage:
//
//	tracetool [-summary] TRACE.jsonl             per-name latency table (default)
//	tracetool -list TRACE.jsonl                  one line per trace
//	tracetool -trace ID TRACE.jsonl              waterfall + critical path for one trace
//	tracetool -p99 NAME TRACE.jsonl              slowest traces for one span name
//	tracetool -check [-require a,b] TRACE.jsonl  connectivity gate
//
// -p99 accepts both the span name ("server.solve") and its histogram
// spelling ("server.solve.seconds"). -check verifies that every trace has
// exactly one root span and no span references a parent outside its
// trace; -require additionally demands that every trace contains each of
// the named spans.
//
// Exit codes: 0 success, 1 check violations (-check) or trace/name not
// found (-trace, -p99), 2 usage or input errors (malformed JSONL is
// refused, not guessed at).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain runs one tracetool invocation and returns the process exit
// code.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracetool", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		summary = fs.Bool("summary", false, "print a per-span-name latency summary (the default mode)")
		list    = fs.Bool("list", false, "print one line per trace: id, root, span count, duration")
		traceID = fs.String("trace", "", "render the waterfall and critical path of this trace id")
		p99Name = fs.String("p99", "", "print the slowest traces (at or above p99) for this span name")
		check   = fs.Bool("check", false, "verify every trace is connected: one root, no orphan parents")
		require = fs.String("require", "", "with -check: comma-separated span names every trace must contain")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	modes := 0
	for _, on := range []bool{*summary, *list, *traceID != "", *p99Name != "", *check} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "tracetool: -summary, -list, -trace, -p99 and -check are mutually exclusive")
		return 2
	}
	if *require != "" && !*check {
		fmt.Fprintln(stderr, "tracetool: -require only makes sense with -check")
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "tracetool: want exactly one trace file (JSONL from -trace-out)")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "tracetool:", err)
		return 2
	}
	defer f.Close()
	events, err := loadEvents(f)
	if err != nil {
		fmt.Fprintf(stderr, "tracetool: %s: %v\n", fs.Arg(0), err)
		return 2
	}

	switch {
	case *list:
		printList(stdout, events)
	case *traceID != "":
		tr, ok := buildTraces(events)[*traceID]
		if !ok {
			fmt.Fprintf(stderr, "tracetool: trace %s not found\n", *traceID)
			return 1
		}
		printWaterfall(stdout, tr)
	case *p99Name != "":
		if !printP99(stdout, events, *p99Name) {
			fmt.Fprintf(stderr, "tracetool: no spans named %q\n", *p99Name)
			return 1
		}
	case *check:
		var required []string
		for _, name := range strings.Split(*require, ",") {
			if name = strings.TrimSpace(name); name != "" {
				required = append(required, name)
			}
		}
		violations := checkTraces(events, required)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(stderr, "tracetool:", v)
			}
			fmt.Fprintf(stderr, "tracetool: %d violation(s)\n", len(violations))
			return 1
		}
		fmt.Fprintf(stdout, "ok: %d trace(s), %d span(s) connected\n",
			len(buildTraces(events)), countTraced(events))
	default:
		printSummary(stdout, events)
	}
	return 0
}
