package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Nested brackets in
// the text and parentheses in the target are out of scope — the repo's
// documentation uses neither.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// headingRe matches ATX headings of any level.
var headingRe = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)

// codeSpanRe strips inline code spans so links inside backticks are not
// checked (they are usually syntax examples, not navigation).
var codeSpanRe = regexp.MustCompile("`[^`]*`")

// anchorDropRe removes the characters GitHub drops when slugging headings.
var anchorDropRe = regexp.MustCompile(`[^\p{L}\p{N}\s_-]`)

// checkFiles validates every file and returns human-readable descriptions
// of the broken links. The error return is reserved for I/O failures on
// the argument files themselves.
func checkFiles(paths []string) ([]string, error) {
	var broken []string
	// Anchor sets are memoized per target document: the argument files
	// cross-reference each other, and re-slugging per link is wasteful.
	anchors := make(map[string]map[string]bool)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		anchors[filepath.Clean(path)] = headingAnchors(string(data))
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for _, l := range extractLinks(string(data)) {
			if msg := checkLink(path, l, anchors); msg != "" {
				broken = append(broken, fmt.Sprintf("%s:%d: %s", path, l.line, msg))
			}
		}
	}
	return broken, nil
}

// link is one extracted markdown link target with its source line.
type link struct {
	target string
	line   int
}

// extractLinks returns the inline link targets of a markdown document,
// skipping fenced code blocks and inline code spans.
func extractLinks(doc string) []link {
	var out []link
	inFence := false
	for i, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		line = codeSpanRe.ReplaceAllString(line, "")
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			out = append(out, link{target: m[1], line: i + 1})
		}
	}
	return out
}

// checkLink validates one link target relative to the file containing it.
// It returns a description of the breakage, or "" when the link is fine.
func checkLink(fromFile string, l link, anchors map[string]map[string]bool) string {
	t := l.target
	for _, scheme := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(t, scheme) {
			return ""
		}
	}
	pathPart, frag, hasFrag := strings.Cut(t, "#")

	target := fromFile // pure fragment: anchor in the same document
	if pathPart != "" {
		target = filepath.Join(filepath.Dir(fromFile), pathPart)
		info, err := os.Stat(target)
		if err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", t, target)
		}
		if hasFrag && info.IsDir() {
			return fmt.Sprintf("broken link %q: fragment on a directory", t)
		}
	}
	if !hasFrag || frag == "" {
		return ""
	}

	target = filepath.Clean(target)
	set, ok := anchors[target]
	if !ok {
		data, err := os.ReadFile(target)
		if err != nil {
			return fmt.Sprintf("broken link %q: cannot read %s for anchors", t, target)
		}
		set = headingAnchors(string(data))
		anchors[target] = set
	}
	if !set[frag] {
		return fmt.Sprintf("broken link %q: no heading anchors to #%s in %s", t, frag, target)
	}
	return ""
}

// headingAnchors returns the set of GitHub-style anchors of a markdown
// document: headings are lowercased, punctuation dropped, spaces become
// hyphens, and duplicates get -1, -2, ... suffixes.
func headingAnchors(doc string) map[string]bool {
	out := make(map[string]bool)
	seen := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[2])
		if n := seen[slug]; n > 0 {
			out[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			out[slug] = true
		}
		seen[slug]++
	}
	return out
}

// slugify converts one heading's text to its GitHub anchor.
func slugify(heading string) string {
	// Markdown formatting inside the heading does not survive into the
	// anchor: strip code backticks and star emphasis. Underscores are kept
	// verbatim — they appear literally in metric-name headings, and GitHub
	// keeps them in slugs.
	s := strings.NewReplacer("`", "", "*", "").Replace(heading)
	// Inline links in headings anchor on their text.
	s = linkRe.ReplaceAllStringFunc(s, func(m string) string {
		return m[1:strings.Index(m, "]")]
	})
	s = strings.ToLower(s)
	s = anchorDropRe.ReplaceAllString(s, "")
	s = strings.ReplaceAll(strings.TrimSpace(s), " ", "-")
	return s
}
