// Command linkcheck validates the relative links and intra-document
// anchors of markdown files, so the documentation set (README.md,
// DESIGN.md, EXPERIMENTS.md, OBSERVABILITY.md, ...) cannot silently rot
// as files and headings move. It is stdlib-only and runs in CI.
//
// Checked: inline links [text](target) whose target is a relative path
// (must exist on disk, relative to the file) and/or a #fragment (must
// match a GitHub-style heading anchor of the target document). Skipped:
// absolute URLs (http:, https:, mailto:), and anything inside fenced code
// blocks or inline code spans.
//
// Usage:
//
//	linkcheck FILE.md [FILE.md ...]
//
// Exits non-zero listing every broken link.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	broken, err := checkFiles(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}
	for _, b := range broken {
		fmt.Fprintln(os.Stderr, b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links\n", len(broken))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d files ok\n", len(os.Args)-1)
}
