package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file tree rooted in a temp dir and returns its root.
func write(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestValidLinksPass(t *testing.T) {
	dir := write(t, map[string]string{
		"A.md": "# Top\n\nSee [B](B.md), [a heading](B.md#deep-dive), " +
			"[myself](#top), [the web](https://example.com), " +
			"[mail](mailto:x@y.z) and [sub](docs/C.md).\n",
		"B.md":       "# Title\n\n## Deep Dive\n\ntext\n",
		"docs/C.md":  "# C\n",
		"ignored.md": "[broken](nope.md) — not passed to the checker\n",
	})
	broken, err := checkFiles([]string{
		filepath.Join(dir, "A.md"),
		filepath.Join(dir, "B.md"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Errorf("valid links reported broken: %v", broken)
	}
}

func TestBrokenPathAndAnchor(t *testing.T) {
	dir := write(t, map[string]string{
		"A.md": "[gone](missing.md)\n\n[bad anchor](B.md#no-such-heading)\n\n[bad self](#nope)\n",
		"B.md": "# Only Heading\n",
	})
	broken, err := checkFiles([]string{filepath.Join(dir, "A.md")})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 3 {
		t.Fatalf("want 3 broken links, got %d: %v", len(broken), broken)
	}
	for i, want := range []string{"missing.md", "no-such-heading", "#nope"} {
		if !strings.Contains(broken[i], want) {
			t.Errorf("broken[%d] = %q, want mention of %q", i, broken[i], want)
		}
	}
}

func TestCodeIsSkipped(t *testing.T) {
	dir := write(t, map[string]string{
		"A.md": "```\n[not a link](missing.md)\n```\n\n" +
			"Inline `[also ignored](gone.md)` span.\n\n" +
			"~~~\n[fenced too](nope.md)\n~~~\n",
	})
	broken, err := checkFiles([]string{filepath.Join(dir, "A.md")})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Errorf("links inside code must be skipped: %v", broken)
	}
}

func TestAnchorSlugging(t *testing.T) {
	cases := []struct{ heading, anchor string }{
		{"Reading the metrics report", "reading-the-metrics-report"},
		{"The `-debug-addr` flag", "the--debug-addr-flag"},
		{"Counters: hits & misses", "counters-hits--misses"},
		{"experiments.cell_seconds", "experimentscell_seconds"},
		{"What *is* a span?", "what-is-a-span"},
	}
	for _, tc := range cases {
		if got := slugify(tc.heading); got != tc.anchor {
			t.Errorf("slugify(%q) = %q, want %q", tc.heading, got, tc.anchor)
		}
	}
}

func TestDuplicateHeadingsGetSuffixes(t *testing.T) {
	anchors := headingAnchors("# Same\n\n## Same\n\n### Same\n")
	for _, want := range []string{"same", "same-1", "same-2"} {
		if !anchors[want] {
			t.Errorf("missing anchor %q in %v", want, anchors)
		}
	}
}

func TestHeadingsInsideFencesIgnored(t *testing.T) {
	anchors := headingAnchors("```\n# not a heading\n```\n\n# Real\n")
	if anchors["not-a-heading"] {
		t.Error("fenced pseudo-heading produced an anchor")
	}
	if !anchors["real"] {
		t.Error("real heading missing")
	}
}

// TestRepoDocsAreClean runs the checker over the repository's actual
// documentation set — the same invocation CI uses.
func TestRepoDocsAreClean(t *testing.T) {
	docs := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "OBSERVABILITY.md"}
	var paths []string
	for _, d := range docs {
		p := filepath.Join("..", "..", d)
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("documentation file %s missing: %v", d, err)
		}
		paths = append(paths, p)
	}
	broken, err := checkFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Errorf("repository docs have broken links:\n%s", strings.Join(broken, "\n"))
	}
}
