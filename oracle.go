package defender

import (
	"math/big"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/dynamics"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
)

// This file exposes the independent validation machinery: the LP minimax
// oracle, the learning dynamics, profile serialization and the
// quality-of-protection metrics.

// Learning-dynamics result types.
type (
	// FictitiousPlayResult carries exact rational value bounds from
	// integer play counts.
	FictitiousPlayResult = dynamics.FPResult
	// MultiplicativeWeightsResult carries no-regret average strategies
	// and float value bounds.
	MultiplicativeWeightsResult = dynamics.MWResult
)

// ErrValueTooLarge: the tuple space C(m,k) exceeds the LP oracle's
// enumeration budget.
var ErrValueTooLarge = core.ErrValueTooLarge

// GameValue computes the exact minimax value of Π_k(G) with one attacker —
// the probability an optimal defender catches an optimal attacker — by
// enumerating all C(m,k) defender tuples and solving the zero-sum matrix
// game with an exact rational simplex. It is structure-free: for ν = 1 the
// game is constant-sum, so this value must (and, per the E10 experiment,
// does) agree with every structural equilibrium's prediction.
func GameValue(g *Graph, k int) (*big.Rat, error) {
	value, _, _, err := core.GameValue(g, k)
	return value, err
}

// MaxminGuarantee returns the best expected catch count a defender can
// guarantee against ν fully adversarial attackers: ν · GameValue(g, k).
// k-matching equilibria attain it exactly.
func MaxminGuarantee(g *Graph, attackers, k int) (*big.Rat, error) {
	return core.MaxminGuarantee(g, attackers, k)
}

// FictitiousPlay runs deterministic simultaneous fictitious play on the
// Edge model Π_1(G) with one attacker, returning exact rational bounds
// that bracket the minimax value (Robinson's theorem).
func FictitiousPlay(g *Graph, rounds int) (FictitiousPlayResult, error) {
	return dynamics.FictitiousPlay(g, rounds)
}

// MultiplicativeWeights runs the Hedge algorithm for both players of
// Π_1(G) with one attacker; pass eta <= 0 for the standard step size.
func MultiplicativeWeights(g *Graph, rounds int, eta float64) (MultiplicativeWeightsResult, error) {
	return dynamics.MultiplicativeWeights(g, rounds, eta)
}

// RegretMatching runs Hart & Mas-Colell regret-matching dynamics on the
// Edge model Π_1(G) with one attacker (randomized sampled play; empirical
// averages converge to the minimax value).
func RegretMatching(g *Graph, rounds int, seed int64) (MultiplicativeWeightsResult, error) {
	return dynamics.RegretMatching(g, rounds, seed)
}

// FictitiousPlayTuple runs fictitious play on the full Tuple model Π_k(G)
// with one attacker, using an exact integer branch-and-bound defender best
// response; the returned bounds bracket the k-power minimax value.
func FictitiousPlayTuple(g *Graph, k, rounds int) (FictitiousPlayResult, error) {
	return dynamics.FictitiousPlayTuple(g, k, rounds)
}

// SolveAny computes SOME verified mixed Nash equilibrium of Π_k(G) for any
// graph: k-matching where the Cor 4.11 partition exists, perfect-matching
// or regular profiles where those apply, and otherwise the exact
// LP-minimax pair of the ν=1 constant-sum game lifted to ν symmetric
// attackers. Returns the family used: "k-matching", "perfect-matching",
// "regular" or "lp-minimax".
func SolveAny(g *Graph, attackers, k int) (TupleEquilibrium, string, error) {
	return core.SolveAny(g, attackers, k)
}

// CyclePathNE constructs the rotation mixed equilibrium of the Path model
// on a cycle: the defender cleans a uniformly random k-edge arc, attackers
// spread uniformly; gain (k+1)·ν/n. Contiguity costs the defender — this
// is strictly below the Tuple-model gain for k >= 2 (see the tests).
func CyclePathNE(g *Graph, attackers, k int) (TupleEquilibrium, error) {
	return core.CyclePathNE(g, attackers, k)
}

// VerifyPathNE checks a profile against the PATH model's equilibrium
// conditions (defender deviations range over k-edge simple paths only).
func VerifyPathNE(gm *Game, mp MixedProfile) error {
	return core.VerifyPathNE(gm, mp)
}

// WeightedDamageValue extends the model to valued targets: hosts carry
// nonnegative weights and the defender minimizes the worst-case expected
// damage max_v w(v)·(1 − P(Hit(v))). Returns the exact minimax damage and
// the optimal defense distribution over k-tuples (LP oracle; subject to
// the C(m,k) enumeration limit).
func WeightedDamageValue(g *Graph, k int, weights []*big.Rat) (*big.Rat, TupleStrategy, error) {
	return core.WeightedDamageValue(g, k, weights)
}

// Regret quantifies each player's exact deviation incentive in a profile;
// a profile is a Nash equilibrium iff every regret is zero.
type Regret = core.Regret

// ComputeRegret evaluates the exact deviation incentives of every player —
// the quantitative refinement of VerifyNE.
func ComputeRegret(gm *Game, mp MixedProfile) (Regret, error) {
	return core.ComputeRegret(gm, mp)
}

// EncodeProfile serializes a validated mixed configuration to JSON with
// exact rational probability strings (see internal/game for the schema).
func EncodeProfile(gm *Game, mp MixedProfile) ([]byte, error) {
	return gm.EncodeProfile(mp)
}

// DecodeProfile parses a JSON profile against graph g, reconstructing and
// validating the game instance and mixed configuration.
func DecodeProfile(g *graph.Graph, data []byte) (*Game, MixedProfile, error) {
	return game.DecodeProfile(g, data)
}
