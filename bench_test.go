package defender_test

// The benchmark harness: one testing.B benchmark per experiment table of
// EXPERIMENTS.md (E1–E15), plus micro-benchmarks of the substrate
// algorithms. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches re-run the quick-mode experiment (including its
// self-checks) each iteration, so their throughput doubles as a regression
// gate; the micro benches isolate the algorithmic kernels the paper's
// complexity claims refer to (Hopcroft–Karp, blossom, minimum edge cover,
// Algorithm A, Algorithm A_tuple's lift, and the exact verifier).

import (
	"testing"

	defender "github.com/defender-game/defender"
	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/dynamics"
	"github.com/defender-game/defender/internal/experiments"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/matching"
	"github.com/defender-game/defender/internal/sim"
)

// benchExperiment runs one experiment table in quick mode per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var runner experiments.Experiment
	for _, r := range experiments.All() {
		if r.ID == id {
			runner = r
		}
	}
	if runner.Run == nil {
		b.Fatalf("no experiment %s", id)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Failures()) > 0 {
			b.Fatalf("%s self-check failed", id)
		}
	}
}

func BenchmarkE1PureExistence(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2GainVsK(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3Reduction(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4ATupleScaling(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5MonteCarlo(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Characterization(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7HitProfile(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Substrates(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Extensions(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10ValueOracle(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11Learning(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12Economics(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Robust(b *testing.B)          { benchExperiment(b, "E13") }
func BenchmarkE14Weighted(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15PathModel(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16CompleteSolver(b *testing.B)  { benchExperiment(b, "E16") }

// --- substrate micro-benchmarks ---

func BenchmarkHopcroftKarp(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		g := graph.RandomBipartite(n/2, n/2, 8.0/float64(n), 1)
		side, err := g.Bipartition()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := matching.HopcroftKarp(g, side); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBlossom(b *testing.B) {
	for _, n := range []int{100, 400, 1000} {
		g := graph.RandomConnected(n, 6.0/float64(n), 1)
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				matching.Maximum(g)
			}
		})
	}
}

func BenchmarkMinimumEdgeCover(b *testing.B) {
	for _, n := range []int{100, 1000} {
		g := graph.RandomConnected(n, 6.0/float64(n), 1)
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cover.MinimumEdgeCover(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAlgorithmA(b *testing.B) {
	for _, n := range []int{64, 512, 2048} {
		g := graph.Cycle(n)
		p, err := cover.FindNEPartitionBipartite(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.AlgorithmA(g, 4, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLiftToTupleModel(b *testing.B) {
	// Theorem 4.13's O(k·n) step in isolation.
	for _, n := range []int{256, 1024} {
		g := graph.Cycle(n)
		ne, err := core.SolveEdgeModel(g, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []int{4, 32} {
			b.Run(itoa(n)+"/k="+itoa(k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.LiftToTupleModel(ne, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkVerifyNE(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		g := graph.Grid(n/4, 4)
		ne, err := core.SolveTupleModel(g, 6, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := core.VerifyNE(ne.Game, ne.Profile); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulate(b *testing.B) {
	g := graph.CompleteBipartite(4, 8)
	ne, err := core.SolveTupleModel(g, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(ne.Game, ne.Profile, 1000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPGameValue(b *testing.B) {
	// The exact-simplex oracle: C8 at k=2 has C(8,2)=28 tuple columns.
	g := graph.Cycle(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := core.GameValue(g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFictitiousPlay(b *testing.B) {
	g := graph.Petersen()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dynamics.FictitiousPlay(g, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiplicativeWeights(b *testing.B) {
	g := graph.Petersen()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dynamics.MultiplicativeWeights(g, 2000, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveEndToEnd(b *testing.B) {
	// The public API path a downstream user hits.
	g := defender.GridGraph(6, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := defender.Solve(g, 10, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// itoa avoids importing strconv into the benchmark namespace repeatedly.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
