# Development targets. CI (.github/workflows/ci.yml) runs the same gate:
# build, vet, defenderlint, race tests, and a fuzz smoke of both parsers.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test lint vet race fuzz-smoke check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint = go vet + the project's own invariant analyzers (see
# internal/analyzers and README "Static analysis & invariants").
lint: vet
	$(GO) run ./cmd/defenderlint ./...

race:
	$(GO) test -race ./...

# fuzz-smoke gives each native fuzz target a short budget; crashes fail
# the target and land a reproducer under testdata/fuzz.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzDecodeProfile -fuzztime=$(FUZZTIME) ./internal/game

check: build lint race
