# Development targets. CI (.github/workflows/ci.yml) runs the same gate:
# build, vet, defenderlint, race tests, and a fuzz smoke of both parsers.

GO ?= go
FUZZTIME ?= 30s

# Smoke-run artifacts (lint SARIF, trace/metrics/SLO captures) land in one
# gitignored directory instead of littering the repo root. CI uploads them
# from here.
SMOKEDIR ?= _smoke

.PHONY: all build test lint vet race bench bench-kernel bench-scaling benchdiff fuzz-smoke linkcheck loadtest trace-smoke check

# DOCS is the documentation set linkcheck keeps honest (relative links and
# heading anchors; see cmd/linkcheck).
DOCS = README.md DESIGN.md EXPERIMENTS.md OBSERVABILITY.md SCALING.md TRACING.md

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint = go vet + the project's own invariant analyzers (see
# internal/analyzers and DESIGN.md "Static analysis & invariants"). Test
# files are included, and the run leaves a SARIF report behind — locally for
# inspection, in CI as an uploaded artifact. Findings print to stderr via
# the per-analyzer summary; the full report lives in $(SMOKEDIR)/defenderlint.sarif.
lint: vet
	@mkdir -p $(SMOKEDIR)
	$(GO) run ./cmd/defenderlint -include-tests -format=sarif -o $(SMOKEDIR)/defenderlint.sarif ./...

race:
	$(GO) test -race ./...

# bench runs the experiment-engine micro/table benchmarks and then has the
# CLI emit the versioned BENCH_experiments.json perf record (schema v2:
# git SHA, timestamp, host env, per-table wall time, cells/sec,
# p50/p95/p99/max cell latency over BENCH_REPEAT robust samples) and
# append the same record to the bench/history trajectory.
BENCH_REPEAT ?= 3
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/experiments
	$(GO) run ./cmd/experiments -quick -bench-repeat $(BENCH_REPEAT) \
		-bench-out BENCH_experiments.json -bench-history bench/history

# bench-kernel runs the arithmetic-kernel and solver hot-loop benchmarks
# (internal/rat, internal/lp, internal/core, internal/game) and folds them
# into a schema-v2 record via cmd/benchkernel, appended to bench/history so
# benchdiff can gate kernel regressions exactly like experiment tables.
KERNEL_PKGS = ./internal/rat ./internal/lp ./internal/core ./internal/game
bench-kernel:
	$(GO) test -run='^$$' -bench=. -count=$(BENCH_REPEAT) $(KERNEL_PKGS) | \
		$(GO) run ./cmd/benchkernel -out BENCH_kernel.json -history bench/history

# bench-scaling drives the sparse-core pipeline across the 10^3..10^6
# Barabási–Albert ladder (generate, ρ(G), k-matching NE solve, Theorem 3.4
# verify per decade) and records the curve as a schema-v2 bench record in
# bench/history. SCALING.md explains how to read it; CI's scaling-smoke
# job runs the same ladder capped at 10^4 vertices.
SCALING_MAX_N ?= 1000000
bench-scaling:
	$(GO) run ./cmd/benchkernel -scaling -scaling-max-n $(SCALING_MAX_N) \
		-scaling-repeat $(BENCH_REPEAT) -out BENCH_scaling.json -history bench/history

# benchdiff gates the two most recent bench/history records against each
# other (see OBSERVABILITY.md "Tracking performance over time").
benchdiff:
	$(GO) run ./cmd/benchdiff -min-samples 2 -min-wall-ms 1 -history bench/history

# fuzz-smoke gives each native fuzz target a short budget; crashes fail
# the target and land a reproducer under testdata/fuzz. The graph package
# holds two targets (edge-list parser and graph6 round-trip), so the
# -fuzz patterns are anchored.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzParseGraph6$$' -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzBuildCSR$$' -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeProfile$$' -fuzztime=$(FUZZTIME) ./internal/game
	$(GO) test -run='^$$' -fuzz='^FuzzRatVsBigRat$$' -fuzztime=$(FUZZTIME) ./internal/rat
	$(GO) test -run='^$$' -fuzz='^FuzzServeSolve$$' -fuzztime=$(FUZZTIME) ./internal/server

# loadtest boots defenderd on a private port, waits for /healthz, and
# drives LOADTEST_DURATION of cached solve traffic through cmd/loadgen:
# the steady-state broker + cache + encode path, not the solver. The
# latency record (p50/p95/p99) is written to BENCH_loadgen.json and
# appended to bench/history; the run fails below LOADTEST_MIN_RPS req/s.
# The daemon asks for -solver-threads 2 to prove the parallel solver
# path holds the floor under concurrent serving (the server clamps
# workers x solver-threads to GOMAXPROCS, so on small runners this
# degrades to 1 and the run is still honest). Run it twice and
# `make benchdiff` gates the serve-vs-serve pair (CI's serve-smoke job
# does exactly that).
LOADTEST_ADDR ?= 127.0.0.1:18211
LOADTEST_DURATION ?= 10s
LOADTEST_MIN_RPS ?= 2000
LOADTEST_CONCURRENCY ?= 32
LOADTEST_HISTORY ?= bench/history
LOADTEST_SOLVER_THREADS ?= 2
loadtest:
	@mkdir -p bin
	$(GO) build -o bin/defenderd ./cmd/defenderd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	@set -e; \
	./bin/defenderd -addr $(LOADTEST_ADDR) -solver-threads $(LOADTEST_SOLVER_THREADS) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null; wait $$pid 2>/dev/null' EXIT INT TERM; \
	ok=0; \
	for i in $$(seq 1 100); do \
		if curl -fsS -o /dev/null http://$(LOADTEST_ADDR)/healthz 2>/dev/null; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "loadtest: defenderd never became healthy on $(LOADTEST_ADDR)"; exit 1; }; \
	./bin/loadgen -addr http://$(LOADTEST_ADDR) -duration $(LOADTEST_DURATION) \
		-concurrency $(LOADTEST_CONCURRENCY) -min-rps $(LOADTEST_MIN_RPS) \
		-bench-out BENCH_loadgen.json -bench-history $(LOADTEST_HISTORY)

# trace-smoke proves the tracing pipeline end-to-end (TRACING.md): boot
# defenderd with full sampling, a trace sink and a request log, drive it
# with loadgen, drain gracefully, then assert the capture — every trace
# connected with a server.solve root (tracetool -check), the broker's
# queue-wait span present, the tail traceable (-p99), and the
# OpenMetrics exposition carrying trace_id exemplars while the 0.0.4
# exposition stays exemplar-free (its grammar forbids them). Leaves
# trace_smoke.jsonl, requests_smoke.jsonl, metrics_smoke.prom (0.0.4),
# metrics_smoke.om (OpenMetrics) and BENCH_tracegen.json behind under
# $(SMOKEDIR)/ for inspection; CI's trace-smoke job adds jq assertions
# on top.
TRACESMOKE_ADDR ?= 127.0.0.1:18212
TRACESMOKE_DEBUG_ADDR ?= 127.0.0.1:18213
TRACESMOKE_DURATION ?= 5s
trace-smoke:
	@mkdir -p bin $(SMOKEDIR)
	$(GO) build -o bin/defenderd ./cmd/defenderd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	$(GO) build -o bin/tracetool ./cmd/tracetool
	@set -e; \
	./bin/defenderd -addr $(TRACESMOKE_ADDR) -debug-addr $(TRACESMOKE_DEBUG_ADDR) \
		-trace-out $(SMOKEDIR)/trace_smoke.jsonl -trace-sample 1.0 \
		-log-out $(SMOKEDIR)/requests_smoke.jsonl & pid=$$!; \
	trap 'kill $$pid 2>/dev/null; wait $$pid 2>/dev/null' EXIT INT TERM; \
	ok=0; \
	for i in $$(seq 1 100); do \
		if curl -fsS -o /dev/null http://$(TRACESMOKE_ADDR)/healthz 2>/dev/null; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "trace-smoke: defenderd never became healthy on $(TRACESMOKE_ADDR)"; exit 1; }; \
	curl -fsS http://$(TRACESMOKE_ADDR)/readyz > $(SMOKEDIR)/readyz_smoke.json; \
	./bin/loadgen -addr http://$(TRACESMOKE_ADDR) -duration $(TRACESMOKE_DURATION) \
		-concurrency $(LOADTEST_CONCURRENCY) -min-rps $(LOADTEST_MIN_RPS) \
		-bench-out $(SMOKEDIR)/BENCH_tracegen.json; \
	curl -fsS "http://$(TRACESMOKE_DEBUG_ADDR)/metrics?format=prometheus" > $(SMOKEDIR)/metrics_smoke.prom; \
	curl -fsS "http://$(TRACESMOKE_DEBUG_ADDR)/metrics?format=openmetrics" > $(SMOKEDIR)/metrics_smoke.om; \
	curl -fsS http://$(TRACESMOKE_DEBUG_ADDR)/slo > $(SMOKEDIR)/slo_smoke.json; \
	kill -TERM $$pid; wait $$pid 2>/dev/null || true; \
	trap - EXIT INT TERM; \
	./bin/tracetool -check -require server.solve $(SMOKEDIR)/trace_smoke.jsonl; \
	./bin/tracetool $(SMOKEDIR)/trace_smoke.jsonl | grep -q 'broker\.queue_wait' \
		|| { echo "trace-smoke: no broker.queue_wait span captured"; exit 1; }; \
	./bin/tracetool -p99 server.solve.seconds $(SMOKEDIR)/trace_smoke.jsonl; \
	grep -q '# {trace_id=' $(SMOKEDIR)/metrics_smoke.om \
		|| { echo "trace-smoke: no trace_id exemplars in the OpenMetrics exposition"; exit 1; }; \
	tail -1 $(SMOKEDIR)/metrics_smoke.om | grep -q '^# EOF$$' \
		|| { echo "trace-smoke: OpenMetrics exposition missing the # EOF terminator"; exit 1; }; \
	! grep -q '# {trace_id=' $(SMOKEDIR)/metrics_smoke.prom \
		|| { echo "trace-smoke: exemplars leaked into the text 0.0.4 exposition (would break its parsers)"; exit 1; }

linkcheck:
	$(GO) run ./cmd/linkcheck $(DOCS)

check: build lint race linkcheck
