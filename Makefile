# Development targets. CI (.github/workflows/ci.yml) runs the same gate:
# build, vet, defenderlint, race tests, and a fuzz smoke of both parsers.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test lint vet race bench fuzz-smoke linkcheck check

# DOCS is the documentation set linkcheck keeps honest (relative links and
# heading anchors; see cmd/linkcheck).
DOCS = README.md DESIGN.md EXPERIMENTS.md OBSERVABILITY.md

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint = go vet + the project's own invariant analyzers (see
# internal/analyzers and README "Static analysis & invariants").
lint: vet
	$(GO) run ./cmd/defenderlint ./...

race:
	$(GO) test -race ./...

# bench runs the experiment-engine micro/table benchmarks and then has the
# CLI emit the BENCH_experiments.json throughput baseline (per-table wall
# time, cells/sec, p50/p95 cell latency).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/experiments
	$(GO) run ./cmd/experiments -quick -bench-out BENCH_experiments.json

# fuzz-smoke gives each native fuzz target a short budget; crashes fail
# the target and land a reproducer under testdata/fuzz.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzDecodeProfile -fuzztime=$(FUZZTIME) ./internal/game

linkcheck:
	$(GO) run ./cmd/linkcheck $(DOCS)

check: build lint race linkcheck
