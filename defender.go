// Package defender is a complete implementation of the network-security
// game of "The Power of the Defender" (Gelastou, Mavronicolas, Papadopoulou,
// Philippou, Spirakis; ICDCS 2006).
//
// The Tuple model Π_k(G) is played on an undirected graph G: ν attackers
// (vertex players) each choose a vertex, and one defender (the tuple
// player) chooses a tuple of k distinct edges. An attacker is caught iff
// its vertex is an endpoint of the defender's tuple; the defender's profit
// is the number of attackers caught. k = 1 is the Edge model of
// Mavronicolas et al. (ISAAC 2005).
//
// The package exposes:
//
//   - pure Nash equilibria: existence (iff G has an edge cover of size k,
//     Theorem 3.1), construction and verification;
//   - k-matching mixed Nash equilibria: Algorithm A_tuple (Theorems
//     4.12–4.13), the characterization of graphs admitting them (Corollary
//     4.11), and the polynomial-time reductions to and from Edge-model
//     matching equilibria (Theorem 4.5);
//   - an exact equilibrium verifier (Theorem 3.4) working in rational
//     arithmetic — no floating-point tolerances;
//   - structural extensions (perfect-matching and regular-graph equilibria,
//     the Path model) and a Monte-Carlo playout simulator.
//
// Quick start:
//
//	g := defender.GridGraph(3, 4)
//	ne, err := defender.Solve(g, 10 /* attackers */, 3 /* k */)
//	if err != nil { ... }
//	fmt.Println("defender gain:", ne.DefenderGain()) // exactly 3·10/|IS|
//
// The heavy lifting lives in internal packages (graph, matching, cover,
// game, core, sim); this package re-exports the stable API surface.
package defender

import (
	"io"

	"github.com/defender-game/defender/internal/core"
	"github.com/defender-game/defender/internal/cover"
	"github.com/defender-game/defender/internal/game"
	"github.com/defender-game/defender/internal/graph"
	"github.com/defender-game/defender/internal/sim"
)

// Core model types, aliased from the internal packages so that callers can
// name every value the API returns.
type (
	// Graph is a simple undirected graph on vertices 0..n−1.
	Graph = graph.Graph
	// Edge is an undirected edge with normalized endpoints (U < V).
	Edge = graph.Edge
	// Game is an instance Π_k(G) with ν attackers and defender power k.
	Game = game.Game
	// Tuple is a defender pure strategy: k distinct edges of G.
	Tuple = game.Tuple
	// PureProfile is a pure configuration of the game.
	PureProfile = game.PureProfile
	// MixedProfile is a mixed configuration: one vertex distribution per
	// attacker plus the defender's tuple distribution, all exact rationals.
	MixedProfile = game.MixedProfile
	// VertexStrategy is an attacker's mixed strategy.
	VertexStrategy = game.VertexStrategy
	// TupleStrategy is the defender's mixed strategy.
	TupleStrategy = game.TupleStrategy
	// EdgeEquilibrium is a structured mixed NE of the Edge model Π_1(G).
	EdgeEquilibrium = core.EdgeEquilibrium
	// TupleEquilibrium is a structured mixed NE of the Tuple model Π_k(G).
	TupleEquilibrium = core.TupleEquilibrium
	// Partition is an (IS, VC) split witnessing the Corollary 4.11
	// characterization of graphs admitting k-matching equilibria.
	Partition = cover.Partition
	// SimResult is the outcome of a Monte-Carlo playout run.
	SimResult = sim.Result
)

// Sentinel errors surfaced by the API.
var (
	// ErrNoMatchingNE: the graph provably admits no (k-)matching NE.
	ErrNoMatchingNE = core.ErrNoMatchingNE
	// ErrNoPureNE: no pure NE exists for the requested k.
	ErrNoPureNE = core.ErrNoPureNE
	// ErrKTooLarge: k exceeds the equilibrium's edge support size |IS|.
	ErrKTooLarge = core.ErrKTooLarge
	// ErrNotEquilibrium: a verification failed with a concrete deviation.
	ErrNotEquilibrium = core.ErrNotEquilibrium
	// ErrCannotVerify: exact verification is out of reach for the instance.
	ErrCannotVerify = core.ErrCannotVerify
	// ErrNoPartition: no independent-set/expander partition exists.
	ErrNoPartition = cover.ErrNoPartition
	// ErrPartitionNotFound: the heuristic partition search gave up.
	ErrPartitionNotFound = cover.ErrPartitionNotFound
	// ErrNotBipartite: a bipartite-only routine met an odd cycle.
	ErrNotBipartite = graph.ErrNotBipartite
	// ErrIsolatedVertex: the model forbids isolated vertices.
	ErrIsolatedVertex = game.ErrIsolatedVertex
)

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// ParseGraph reads a graph in the line-oriented edge-list format
// ("n <count>" header optional, one "u v" pair per line, # comments).
func ParseGraph(r io.Reader) (*Graph, error) { return graph.Parse(r) }

// ParseGraphString parses an edge list from a string.
func ParseGraphString(s string) (*Graph, error) { return graph.ParseString(s) }

// Graph generators for the families used throughout the paper's theory and
// this library's experiments.
var (
	// PathGraph returns the path P_n.
	PathGraph = graph.Path
	// CycleGraph returns the cycle C_n.
	CycleGraph = graph.Cycle
	// CompleteGraph returns the clique K_n.
	CompleteGraph = graph.Complete
	// CompleteBipartiteGraph returns K_{a,b}.
	CompleteBipartiteGraph = graph.CompleteBipartite
	// StarGraph returns the star K_{1,n−1}.
	StarGraph = graph.Star
	// GridGraph returns the r×c grid.
	GridGraph = graph.Grid
	// HypercubeGraph returns the d-dimensional hypercube.
	HypercubeGraph = graph.Hypercube
	// PetersenGraph returns the Petersen graph.
	PetersenGraph = graph.Petersen
	// RandomGNP returns an Erdős–Rényi G(n, p) graph.
	RandomGNP = graph.RandomGNP
	// RandomBipartiteGraph returns a random bipartite graph without
	// isolated vertices.
	RandomBipartiteGraph = graph.RandomBipartite
	// RandomTreeGraph returns a uniform random labelled tree.
	RandomTreeGraph = graph.RandomTree
	// RandomConnectedGraph returns a random connected graph (tree backbone
	// plus G(n,p) edges).
	RandomConnectedGraph = graph.RandomConnected
)

// NewGame validates and constructs the instance Π_k(G) with ν attackers.
func NewGame(g *Graph, attackers, k int) (*Game, error) {
	return game.New(g, attackers, k)
}

// Solve computes a k-matching mixed Nash equilibrium of Π_k(G) end to end:
// it finds an (IS, VC) partition (König's theorem for bipartite graphs,
// exact enumeration or greedy search otherwise) and runs Algorithm A_tuple.
// For bipartite graphs this is the Theorem 5.1 pipeline with total cost
// max{O(k·n), O(m√n)}.
func Solve(g *Graph, attackers, k int) (TupleEquilibrium, error) {
	return core.SolveTupleModel(g, attackers, k)
}

// SolveEdge computes a matching mixed Nash equilibrium of the Edge model
// Π_1(G) via Algorithm A.
func SolveEdge(g *Graph, attackers int) (EdgeEquilibrium, error) {
	return core.SolveEdgeModel(g, attackers)
}

// SolveWithPartition runs Algorithm A_tuple on a caller-supplied partition.
func SolveWithPartition(g *Graph, attackers, k int, p Partition) (TupleEquilibrium, error) {
	return core.AlgorithmATuple(g, attackers, k, p)
}

// FindPartition searches for an independent-set/expander partition of G —
// the Corollary 4.11 certificate that k-matching equilibria exist. It
// returns ErrNoPartition when non-existence is proven and
// ErrPartitionNotFound when the heuristic gives up.
func FindPartition(g *Graph) (Partition, error) {
	return cover.FindNEPartition(g)
}

// Lift transforms a matching NE of Π_1(G) into a k-matching NE of Π_k(G)
// (Lemma 4.8: cyclic k-windows over the labeled edge support).
func Lift(ne EdgeEquilibrium, k int) (TupleEquilibrium, error) {
	return core.LiftToTupleModel(ne, k)
}

// Reduce transforms a k-matching NE of Π_k(G) into a matching NE of Π_1(G)
// (Lemma 4.6: play the support edges individually).
func Reduce(ne TupleEquilibrium) (EdgeEquilibrium, error) {
	return core.ReduceToEdgeModel(ne)
}

// HasPureNE decides pure-equilibrium existence (Theorem 3.1): Π_k(G) has a
// pure NE iff G has an edge cover of size k.
func HasPureNE(g *Graph, k int) (bool, error) { return core.HasPureNE(g, k) }

// BuildPureNE constructs a pure NE (defender on an edge cover of size k).
func BuildPureNE(g *Graph, attackers, k int) (*Game, PureProfile, error) {
	return core.BuildPureNE(g, attackers, k)
}

// IsPureNE verifies a pure profile by exhaustive unilateral deviations
// (exact; may return ErrCannotVerify on huge unstructured instances).
func IsPureNE(gm *Game, p PureProfile) (bool, error) { return core.IsPureNE(gm, p) }

// VerifyNE checks exactly that a mixed profile is a Nash equilibrium,
// using the support characterization of Theorem 3.4.
func VerifyNE(gm *Game, mp MixedProfile) error { return core.VerifyNE(gm, mp) }

// VerifyCharacterization checks all conditions 1–3 of Theorem 3.4.
func VerifyCharacterization(gm *Game, mp MixedProfile) error {
	return core.VerifyCharacterization(gm, mp)
}

// PerfectMatchingNE builds the structural NE for graphs with perfect
// matchings: attackers uniform on V, defender uniform on the cyclic
// k-windows of a perfect matching; gain 2kν/n.
func PerfectMatchingNE(g *Graph, attackers, k int) (TupleEquilibrium, error) {
	return core.PerfectMatchingNE(g, attackers, k)
}

// RegularGraphEdgeNE builds the Edge-model NE for regular graphs:
// attackers uniform on V, defender uniform on all edges; gain 2ν/n.
func RegularGraphEdgeNE(g *Graph, attackers int) (EdgeEquilibrium, error) {
	return core.RegularGraphEdgeNE(g, attackers)
}

// HasPurePathNE decides pure-equilibrium existence in the Path model
// (defender cleans a simple path of k edges): true iff k = n−1 and G has a
// Hamiltonian path, returned as the witness.
func HasPurePathNE(g *Graph, k int) (bool, []int, error) {
	return core.HasPurePathNE(g, k)
}

// Simulate plays a mixed configuration for the given number of rounds and
// returns empirical statistics alongside the exact expectation.
func Simulate(gm *Game, mp MixedProfile, rounds int, seed int64) (SimResult, error) {
	return sim.Run(gm, mp, rounds, seed)
}

// MinimumEdgeCover computes a minimum edge cover of g (Gallai / blossom) —
// the certificate behind pure-equilibrium existence (Corollary 3.2).
func MinimumEdgeCover(g *Graph) ([]Edge, error) { return cover.MinimumEdgeCover(g) }

// MinimumVertexCoverBipartite computes a minimum vertex cover of a
// bipartite graph via Hopcroft–Karp and König's theorem.
func MinimumVertexCoverBipartite(g *Graph) ([]int, error) {
	return cover.MinimumVertexCoverBipartite(g)
}
